//! Inter-procedural, context-aware, field-sensitive data-flow engine.
//!
//! This crate is the analysis substrate of the SPEX reproduction. The paper
//! (§2.2) requires tracking "the data-flow of each program variable
//! corresponding to the configuration parameter" across function calls
//! (inter-procedural), through composite data types (field-sensitive), and
//! separately per parameter (which gives per-parameter "program slices" for
//! the second inference pass).
//!
//! Deliberately, and faithfully to the paper (§4.3), the engine performs
//! **no pointer-alias analysis**: taint does not flow through loads or
//! stores whose target is an unknown pointer. The paper attributes its ~10%
//! inference inaccuracy (worst in OpenLDAP) to exactly this.
//!
//! # Examples
//!
//! ```
//! use spex_dataflow::{AnalyzedModule, TaintEngine, TaintRoot};
//!
//! let program = spex_lang::parse_program(
//!     "int max_threads = 16;
//!      void startup() { int n = max_threads; if (n > 64) { exit(1); } }",
//! )
//! .unwrap();
//! let module = spex_ir::lower_program(&program).unwrap();
//! let analyzed = AnalyzedModule::build(module);
//! let g = analyzed.module.global_by_name("max_threads").unwrap();
//! let result = TaintEngine::new(&analyzed).run(&[TaintRoot::global(g)]);
//! // The comparison `n > 64` is reached by the parameter's data flow.
//! assert!(!result.values.is_empty());
//! ```

pub mod callgraph;
pub mod memloc;
pub mod slice;
pub mod taint;
pub mod usedef;

pub use callgraph::CallGraph;
pub use memloc::{AccessElem, MemLoc};
pub use taint::{TaintEngine, TaintResult, TaintRoot};
pub use usedef::{UseDefs, UseSite};

use spex_ir::cfg::Cfg;
use spex_ir::dom::DomTree;
use spex_ir::{promote_to_ssa, Module};

/// A module prepared for analysis: every function promoted to SSA, with CFG,
/// dominator and use-def information precomputed and shared by all passes.
pub struct AnalyzedModule {
    /// The module with all function bodies in SSA form.
    pub module: Module,
    /// CFG per function (indexed by function id).
    pub cfgs: Vec<Cfg>,
    /// Dominator tree per function.
    pub doms: Vec<DomTree>,
    /// Use-def chains per function.
    pub usedefs: Vec<UseDefs>,
    /// Call graph over the whole module.
    pub callgraph: CallGraph,
}

impl AnalyzedModule {
    /// Promotes every function to SSA and precomputes the analysis state.
    pub fn build(mut module: Module) -> AnalyzedModule {
        for f in &mut module.functions {
            *f = promote_to_ssa(f);
        }
        let cfgs: Vec<Cfg> = module.functions.iter().map(Cfg::build).collect();
        let doms: Vec<DomTree> = module
            .functions
            .iter()
            .zip(&cfgs)
            .map(|(f, c)| DomTree::build(f, c))
            .collect();
        let usedefs: Vec<UseDefs> = module.functions.iter().map(UseDefs::build).collect();
        let callgraph = CallGraph::build(&module);
        AnalyzedModule {
            module,
            cfgs,
            doms,
            usedefs,
            callgraph,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyzed_module_promotes_all_functions() {
        let p = spex_lang::parse_program(
            "int a = 1; int f(int x) { return x + a; } int g() { return f(2); }",
        )
        .unwrap();
        let m = spex_ir::lower_program(&p).unwrap();
        let am = AnalyzedModule::build(m);
        assert!(am.module.functions.iter().all(|f| f.is_ssa));
        assert_eq!(am.cfgs.len(), 2);
        assert_eq!(am.usedefs.len(), 2);
    }
}
