//! Inter-procedural, context-aware, field-sensitive data-flow engine.
//!
//! This crate is the analysis substrate of the SPEX reproduction. The paper
//! (§2.2) requires tracking "the data-flow of each program variable
//! corresponding to the configuration parameter" across function calls
//! (inter-procedural), through composite data types (field-sensitive), and
//! separately per parameter (which gives per-parameter "program slices" for
//! the second inference pass).
//!
//! Deliberately, and faithfully to the paper (§4.3), the engine performs
//! **no pointer-alias analysis**: taint does not flow through loads or
//! stores whose target is an unknown pointer. The paper attributes its ~10%
//! inference inaccuracy (worst in OpenLDAP) to exactly this.
//!
//! # Examples
//!
//! ```
//! use spex_dataflow::{AnalyzedModule, TaintEngine, TaintRoot};
//!
//! let program = spex_lang::parse_program(
//!     "int max_threads = 16;
//!      void startup() { int n = max_threads; if (n > 64) { exit(1); } }",
//! )
//! .unwrap();
//! let module = spex_ir::lower_program(&program).unwrap();
//! let analyzed = AnalyzedModule::build(module);
//! let g = analyzed.module.global_by_name("max_threads").unwrap();
//! let result = TaintEngine::new(&analyzed).run(&[TaintRoot::global(g)]);
//! // The comparison `n > 64` is reached by the parameter's data flow.
//! assert!(!result.values.is_empty());
//! ```

pub mod callgraph;
pub mod memloc;
pub mod scc;
pub mod slice;
pub mod summary;
pub mod taint;
pub mod usedef;

pub use callgraph::CallGraph;
pub use memloc::{AccessElem, MemLoc};
pub use scc::Condensation;
pub use summary::{
    CheckSummary, FunctionSummary, ModuleSummaries, ReturnTransfer, SummaryBehavior, SummaryStats,
};
pub use taint::{TaintEngine, TaintResult, TaintRoot};
pub use usedef::{UseDefs, UseSite};

use spex_ir::cfg::Cfg;
use spex_ir::dom::DomTree;
use spex_ir::{promote_to_ssa, Function, Module};
use std::sync::Arc;

/// A module prepared for analysis: every function promoted to SSA, with CFG,
/// dominator and use-def information precomputed and shared by all passes.
///
/// The per-function artifacts are `Arc`-shared so an incremental
/// [`rebuild`](AnalyzedModule::rebuild) can carry the state of unchanged
/// functions from one analysis generation to the next with a reference-count
/// bump instead of a recomputation.
pub struct AnalyzedModule {
    /// The module with all function bodies in SSA form.
    pub module: Arc<Module>,
    /// CFG per function (indexed by function id).
    pub cfgs: Vec<Arc<Cfg>>,
    /// Dominator tree per function.
    pub doms: Vec<Arc<DomTree>>,
    /// Use-def chains per function.
    pub usedefs: Vec<Arc<UseDefs>>,
    /// Call graph over the whole module.
    pub callgraph: CallGraph,
}

/// SSA promotion plus the per-function analysis artifacts for one function.
/// An already-SSA body is shared as-is (refcount bump, no copy).
fn prepare_function(f: &Arc<Function>) -> (Arc<Function>, Arc<Cfg>, Arc<DomTree>, Arc<UseDefs>) {
    let ssa = if f.is_ssa {
        Arc::clone(f)
    } else {
        Arc::new(promote_to_ssa(f))
    };
    let cfg = Cfg::build(&ssa);
    let dom = DomTree::build(&ssa, &cfg);
    let ud = UseDefs::build(&ssa);
    (ssa, Arc::new(cfg), Arc::new(dom), Arc::new(ud))
}

impl AnalyzedModule {
    /// Promotes every function to SSA and precomputes the analysis state.
    pub fn build(module: Module) -> AnalyzedModule {
        AnalyzedModule::build_ref(&module)
    }

    /// Like [`build`](AnalyzedModule::build), but from a borrowed module:
    /// function bodies are promoted straight off the reference (SSA
    /// promotion copies per function anyway), so the caller's module is
    /// never deep-cloned as a whole.
    pub fn build_ref(module: &Module) -> AnalyzedModule {
        AnalyzedModule::rebuild_inner(None, module, &|_| true)
    }

    /// Incrementally rebuilds the analysis state for a new module
    /// generation, reusing the SSA body, CFG, dominator tree and use-def
    /// chains of every function for which `dirty(name)` is false.
    ///
    /// Reuse is only sound when the unchanged functions are *identical*
    /// (same lowered IR) **and** every id they embed still resolves to the
    /// same entity. The caller guarantees the former (fingerprint
    /// equality); this method verifies the latter and falls back to a full
    /// [`build_ref`](AnalyzedModule::build_ref) when it cannot:
    ///
    /// * the previous function table must be a prefix of the new one
    ///   (same names in the same order; additions only at the end), so
    ///   every embedded [`spex_ir::FuncId`] is stable;
    /// * globals, structs and enum constants must be unchanged (the caller
    ///   invalidates wholesale on header changes), so every
    ///   [`spex_ir::GlobalId`] is stable.
    ///
    /// The call graph is always rebuilt — it is whole-module and cheap
    /// relative to SSA promotion.
    pub fn rebuild(
        prev: &AnalyzedModule,
        module: &Module,
        dirty: &dyn Fn(&str) -> bool,
    ) -> AnalyzedModule {
        let prefix_compatible = prev.module.functions.len() <= module.functions.len()
            && prev
                .module
                .functions
                .iter()
                .zip(&module.functions)
                .all(|(a, b)| a.name == b.name);
        if !prefix_compatible {
            return AnalyzedModule::build_ref(module);
        }
        AnalyzedModule::rebuild_inner(Some(prev), module, dirty)
    }

    fn rebuild_inner(
        prev: Option<&AnalyzedModule>,
        module: &Module,
        dirty: &dyn Fn(&str) -> bool,
    ) -> AnalyzedModule {
        let _span = spex_obs::span("dataflow.prepare");
        let mut functions = Vec::with_capacity(module.functions.len());
        let mut cfgs = Vec::with_capacity(module.functions.len());
        let mut doms = Vec::with_capacity(module.functions.len());
        let mut usedefs = Vec::with_capacity(module.functions.len());
        for (i, f) in module.functions.iter().enumerate() {
            match prev {
                Some(p) if i < p.module.functions.len() && !dirty(&f.name) => {
                    functions.push(Arc::clone(&p.module.functions[i]));
                    cfgs.push(Arc::clone(&p.cfgs[i]));
                    doms.push(Arc::clone(&p.doms[i]));
                    usedefs.push(Arc::clone(&p.usedefs[i]));
                }
                _ => {
                    let (ssa, cfg, dom, ud) = prepare_function(f);
                    functions.push(ssa);
                    cfgs.push(cfg);
                    doms.push(dom);
                    usedefs.push(ud);
                }
            }
        }
        let module = Module::from_parts(
            module.structs.clone(),
            module.globals.clone(),
            functions,
            module.enum_consts.clone(),
        );
        let callgraph = CallGraph::build(&module);
        AnalyzedModule {
            module: Arc::new(module),
            cfgs,
            doms,
            usedefs,
            callgraph,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyzed_module_promotes_all_functions() {
        let p = spex_lang::parse_program(
            "int a = 1; int f(int x) { return x + a; } int g() { return f(2); }",
        )
        .unwrap();
        let m = spex_ir::lower_program(&p).unwrap();
        let am = AnalyzedModule::build(m);
        assert!(am.module.functions.iter().all(|f| f.is_ssa));
        assert_eq!(am.cfgs.len(), 2);
        assert_eq!(am.usedefs.len(), 2);
    }
}
