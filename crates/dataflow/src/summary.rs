//! Summary-based interprocedural analysis (§2.2's "all data-flow paths",
//! extended across call boundaries).
//!
//! A [`FunctionSummary`] captures, context-free, what a function does with
//! its parameters and return value:
//!
//! * **check summaries** ([`CheckSummary`]) — comparisons of a parameter
//!   against a constant whose guarded arm exits or returns an error code,
//!   i.e. the validation checks a caller gets for free by calling this
//!   function;
//! * **return transfers** ([`ReturnTransfer`]) — the function's return
//!   value as a function of its parameters: single-parameter predicates
//!   (`return p >= 1 && p <= 65535;`), parameter-vs-parameter predicates
//!   (`return lo <= hi;`), builtin wrappers (`return atoi(s);`) and
//!   identity wrappers (`return p;`);
//! * **never-returns** — no reachable `ret`, counting callees already
//!   summarized as never-returning.
//!
//! Summaries are evaluated bottom-up over the SCC condensation of the call
//! graph ([`crate::scc::Condensation`]): a function's summary may consult
//! its callees' summaries, so components are processed callees-first.
//! Cyclic components (recursion) iterate to a fixpoint bounded by
//! [`WIDEN_ITERATIONS`]; a component that fails to converge is *widened*
//! to the empty summary — deterministic, terminating, and sound, since an
//! empty summary merely contributes no interprocedural facts.
//!
//! Everything is deterministic by construction (fixed component order,
//! fixed in-function scan order), so consumers folding summary-derived
//! facts stay byte-identical at every thread count.

use crate::scc::Condensation;
use crate::AnalyzedModule;
use spex_ir::cfg::Cfg;
use spex_ir::dom::DomTree;
use spex_ir::{BlockId, Callee, ConstVal, FuncId, Function, Instr, Terminator, ValueId};
use spex_lang::ast::{BinOp, UnOp};
use spex_lang::builtins::Builtin;
use spex_lang::diag::Span;

use crate::usedef::UseDefs;
use crate::UseSite;

/// Fixpoint bound for cyclic components: after this many rounds without
/// convergence every member widens to the empty summary.
pub const WIDEN_ITERATIONS: usize = 4;

/// Recursion bound when resolving a returned value through phi nodes.
const PHI_DEPTH: usize = 8;

/// Cap on distinct return-value leaves considered for one function.
const MAX_LEAVES: usize = 16;

/// What a guarded arm does when a check summary fires. Mirrors the
/// intraprocedural branch classifier's exit/error cases; resets are
/// parameter-dependent (they need the caller's taint) and are therefore
/// not summarizable context-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SummaryBehavior {
    /// The arm calls a no-return routine (directly or transitively).
    Exit,
    /// The arm returns a negative constant or null.
    ErrorReturn,
}

/// "When `param <op> value` holds, the function takes an invalid arm."
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckSummary {
    /// Parameter index (0-based) the comparison guards.
    pub param: u32,
    /// Comparison operator, normalized with the parameter on the left.
    pub op: BinOp,
    /// The constant compared against.
    pub value: i64,
    /// What the guarded arm does.
    pub behavior: SummaryBehavior,
    /// The comparison's source location inside the callee.
    pub span: Span,
}

/// The function's return value as a transfer function of its parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReturnTransfer {
    /// Returns nonzero iff the conjunction of `conds` holds on parameter
    /// `param` — the shape of a validation predicate
    /// (`return p >= 1 && p <= 65535;`).
    Predicate {
        /// Parameter index (0-based) the predicate constrains.
        param: u32,
        /// Conjunction of `(op, constant)` conditions, parameter on the
        /// left, in deterministic extraction order.
        conds: Vec<(BinOp, i64)>,
    },
    /// Returns nonzero iff `left <op> right` over two parameters
    /// (`return lo <= hi;`).
    ParamPredicate {
        /// Left parameter index.
        left: u32,
        /// Comparison operator.
        op: BinOp,
        /// Right parameter index.
        right: u32,
    },
    /// Returns the (possibly cast) result of a builtin call — a wrapper
    /// like `return atoi(s);`, possibly through further wrappers.
    Builtin(Builtin),
    /// Returns parameter `0`-based index unchanged (identity wrapper).
    Param(u32),
}

/// Everything summarized about one function.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FunctionSummary {
    /// Validation checks on parameters whose failure arm exits or errors.
    pub checks: Vec<CheckSummary>,
    /// Return-value transfer function, when one of the recognized shapes
    /// applies.
    pub ret: Option<ReturnTransfer>,
    /// The function has no reachable `ret` (a `die()`-style helper).
    pub never_returns: bool,
    /// The function's component failed to converge and was widened to the
    /// empty summary.
    pub widened: bool,
}

impl FunctionSummary {
    /// Whether the summary carries no interprocedural facts.
    pub fn is_empty(&self) -> bool {
        self.checks.is_empty() && self.ret.is_none() && !self.never_returns
    }
}

/// Recompute accounting for one [`ModuleSummaries`] evaluation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SummaryStats {
    /// Functions whose summary was (re)computed this evaluation.
    pub runs: usize,
    /// Functions whose summary was reused from the previous evaluation.
    pub hits: usize,
    /// Per-function recompute flags (indexed by function id).
    pub recomputed: Vec<bool>,
}

/// All per-function summaries of a module plus the condensation they were
/// evaluated over.
#[derive(Debug, Clone)]
pub struct ModuleSummaries {
    fns: Vec<FunctionSummary>,
    scc: Condensation,
}

impl ModuleSummaries {
    /// Computes every summary from scratch.
    pub fn compute(am: &AnalyzedModule) -> (ModuleSummaries, SummaryStats) {
        ModuleSummaries::compute_incremental(am, None)
    }

    /// Computes summaries, reusing `prev` for every component with no
    /// dirty member and no recomputed callee component.
    ///
    /// `dirty` is indexed by the *new* module's function ids; the caller
    /// guarantees (fingerprint equality plus stable ids) that a non-dirty
    /// function's body is identical to its previous generation. A dirty
    /// component invalidates exactly itself plus its transitive dependents
    /// (callers), matching the bottom-up evaluation order.
    pub fn compute_incremental(
        am: &AnalyzedModule,
        prev: Option<(&ModuleSummaries, &[bool])>,
    ) -> (ModuleSummaries, SummaryStats) {
        let n = am.module.functions.len();
        let scc = Condensation::build(&am.module);
        let mut fns: Vec<FunctionSummary> = vec![FunctionSummary::default(); n];
        let mut stats = SummaryStats {
            recomputed: vec![false; n],
            ..SummaryStats::default()
        };
        let mut comp_ran = vec![false; scc.components.len()];
        for (c, members) in scc.components.iter().enumerate() {
            let must_run = match prev {
                None => true,
                Some((p, dirty)) => {
                    members
                        .iter()
                        .any(|f| f.index() >= p.fns.len() || dirty.get(f.index()) == Some(&true))
                        || scc.callee_components[c].iter().any(|&cc| comp_ran[cc])
                }
            };
            if !must_run {
                let (p, _) = prev.expect("must_run is false only with a previous generation");
                for f in members {
                    fns[f.index()] = p.fns[f.index()].clone();
                }
                stats.hits += members.len();
                continue;
            }
            comp_ran[c] = true;
            stats.runs += members.len();
            for f in members {
                stats.recomputed[f.index()] = true;
            }
            if !scc.cyclic[c] {
                let f = members[0];
                fns[f.index()] = summarize(am, f, &fns);
            } else {
                let mut converged = false;
                for _ in 0..WIDEN_ITERATIONS {
                    let mut changed = false;
                    for f in members {
                        let next = summarize(am, *f, &fns);
                        if next != fns[f.index()] {
                            fns[f.index()] = next;
                            changed = true;
                        }
                    }
                    if !changed {
                        converged = true;
                        break;
                    }
                }
                if !converged {
                    for f in members {
                        fns[f.index()] = FunctionSummary {
                            widened: true,
                            ..FunctionSummary::default()
                        };
                    }
                }
            }
        }
        (ModuleSummaries { fns, scc }, stats)
    }

    /// The summary of one function.
    pub fn get(&self, f: FuncId) -> &FunctionSummary {
        &self.fns[f.index()]
    }

    /// Number of summarized functions.
    pub fn len(&self) -> usize {
        self.fns.len()
    }

    /// Whether the module has no functions.
    pub fn is_empty(&self) -> bool {
        self.fns.is_empty()
    }

    /// The condensation the summaries were evaluated over.
    pub fn condensation(&self) -> &Condensation {
        &self.scc
    }

    /// Count of summaries carrying at least one fact (for telemetry).
    pub fn fact_count(&self) -> usize {
        self.fns.iter().filter(|s| !s.is_empty()).count()
    }
}

/// Per-function analysis context, bundled to keep signatures short.
struct FnCtx<'a> {
    func: &'a Function,
    cfg: &'a Cfg,
    dom: &'a DomTree,
    ud: &'a UseDefs,
}

fn summarize(am: &AnalyzedModule, fid: FuncId, fns: &[FunctionSummary]) -> FunctionSummary {
    let func = am.module.func(fid);
    if func.blocks.is_empty() {
        return FunctionSummary::default();
    }
    let cx = FnCtx {
        func,
        cfg: &am.cfgs[fid.index()],
        dom: &am.doms[fid.index()],
        ud: &am.usedefs[fid.index()],
    };
    let never_returns = never_returns(&cx, fns);
    let checks = extract_checks(&cx, fns);
    let ret = if never_returns {
        None
    } else {
        return_transfer(&cx, fns)
    };
    FunctionSummary {
        checks,
        ret,
        never_returns,
        widened: false,
    }
}

// --- Local value resolution --------------------------------------------------

/// The integer constant a value resolves to (follows casts and negation).
fn const_int(cx: &FnCtx, v: ValueId) -> Option<i64> {
    let mut cur = v;
    for _ in 0..8 {
        match cx.ud.def_instr(cx.func, cur) {
            Some(Instr::Const { val, .. }) => return val.as_int(),
            Some(Instr::Cast { operand, .. }) => cur = *operand,
            Some(Instr::Un {
                op: UnOp::Neg,
                operand,
                ..
            }) => return const_int(cx, *operand).map(|x| -x),
            _ => return None,
        }
    }
    None
}

fn is_const_null(cx: &FnCtx, v: ValueId) -> bool {
    matches!(
        cx.ud.def_instr(cx.func, v),
        Some(Instr::Const {
            val: ConstVal::Null,
            ..
        })
    )
}

/// The parameter index a value resolves to (follows casts).
fn param_of(cx: &FnCtx, v: ValueId) -> Option<u32> {
    let mut cur = v;
    for _ in 0..8 {
        match cx.ud.def_instr(cx.func, cur) {
            Some(Instr::Param { index, .. }) => return Some(*index),
            Some(Instr::Cast { operand, .. }) => cur = *operand,
            _ => return None,
        }
    }
    None
}

fn negate_cmp(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Ge,
        BinOp::Ge => BinOp::Lt,
        BinOp::Gt => BinOp::Le,
        BinOp::Le => BinOp::Gt,
        BinOp::Eq => BinOp::Ne,
        BinOp::Ne => BinOp::Eq,
        other => other,
    }
}

fn flip_cmp(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Gt => BinOp::Lt,
        BinOp::Le => BinOp::Ge,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

/// A comparison atom over parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Atom {
    /// `param <op> value`.
    ParamConst { param: u32, op: BinOp, value: i64 },
    /// `left <op> right` over two parameters.
    ParamParam { left: u32, op: BinOp, right: u32 },
}

impl Atom {
    fn negated(self) -> Atom {
        match self {
            Atom::ParamConst { param, op, value } => Atom::ParamConst {
                param,
                op: negate_cmp(op),
                value,
            },
            Atom::ParamParam { left, op, right } => Atom::ParamParam {
                left,
                op: negate_cmp(op),
                right,
            },
        }
    }
}

/// Resolves a condition value to a comparison atom: a `Bin` comparison
/// with one side a parameter, a `!` of one, or a bare parameter
/// truthiness test.
fn resolve_atom(cx: &FnCtx, v: ValueId, depth: usize) -> Option<Atom> {
    if depth == 0 {
        return None;
    }
    match cx.ud.def_instr(cx.func, v)? {
        Instr::Bin { op, lhs, rhs, .. } if op.is_comparison() => {
            match (param_of(cx, *lhs), param_of(cx, *rhs)) {
                (Some(l), Some(r)) => Some(Atom::ParamParam {
                    left: l,
                    op: *op,
                    right: r,
                }),
                (Some(p), None) => const_int(cx, *rhs).map(|c| Atom::ParamConst {
                    param: p,
                    op: *op,
                    value: c,
                }),
                (None, Some(p)) => const_int(cx, *lhs).map(|c| Atom::ParamConst {
                    param: p,
                    op: flip_cmp(*op),
                    value: c,
                }),
                (None, None) => None,
            }
        }
        Instr::Un {
            op: UnOp::Not,
            operand,
            ..
        } => resolve_atom(cx, *operand, depth - 1).map(Atom::negated),
        Instr::Cast { operand, .. } => resolve_atom(cx, *operand, depth - 1),
        Instr::Param { index, .. } => Some(Atom::ParamConst {
            param: *index,
            op: BinOp::Ne,
            value: 0,
        }),
        _ => None,
    }
}

// --- Branch machinery (taint-free mirror of the intraprocedural one) ---------

/// The two targets of the conditional branch fed by `cond_value`,
/// normalized so `.0` is taken when the condition is **true**. Follows
/// `!x` and `x == 0` / `x != 0` wrappers.
fn branch_sides(cx: &FnCtx, cond_value: ValueId) -> Option<(BlockId, BlockId)> {
    for site in cx.ud.uses_of(cond_value) {
        match site {
            UseSite::Term(b) => {
                if let Terminator::CondBr {
                    then_bb, else_bb, ..
                } = &cx.func.blocks[b.index()].term.0
                {
                    return Some((*then_bb, *else_bb));
                }
            }
            UseSite::Instr(b, i) => match &cx.func.blocks[b.index()].instrs[*i].0 {
                Instr::Un {
                    dst, op: UnOp::Not, ..
                } => {
                    if let Some((t, e)) = branch_sides(cx, *dst) {
                        return Some((e, t));
                    }
                }
                Instr::Bin {
                    dst,
                    op: BinOp::Eq,
                    lhs,
                    rhs,
                } => {
                    let other = if *lhs == cond_value { *rhs } else { *lhs };
                    if const_int(cx, other) == Some(0) {
                        if let Some((t, e)) = branch_sides(cx, *dst) {
                            return Some((e, t));
                        }
                    }
                }
                Instr::Bin {
                    dst,
                    op: BinOp::Ne,
                    lhs,
                    rhs,
                } => {
                    let other = if *lhs == cond_value { *rhs } else { *lhs };
                    if const_int(cx, other) == Some(0) {
                        if let Some((t, e)) = branch_sides(cx, *dst) {
                            return Some((t, e));
                        }
                    }
                }
                _ => {}
            },
        }
    }
    None
}

/// Straight-line region from `head`: follow unconditional branches while
/// still dominated by `head`.
fn straight_line_region(cx: &FnCtx, head: BlockId) -> Vec<BlockId> {
    let mut region = vec![head];
    let mut cur = head;
    loop {
        match &cx.func.blocks[cur.index()].term.0 {
            Terminator::Br(next) if cx.dom.dominates(head, *next) && *next != head => {
                region.push(*next);
                cur = *next;
            }
            _ => break,
        }
    }
    region
}

/// Classifies the arm starting at `head` without any taint context:
/// exit (no-return call, counting summarized callees) or error return
/// (negative constant / null).
fn classify_arm(cx: &FnCtx, head: BlockId, fns: &[FunctionSummary]) -> Option<SummaryBehavior> {
    let mut error_return = false;
    for b in straight_line_region(cx, head) {
        let blk = &cx.func.blocks[b.index()];
        for (instr, _) in &blk.instrs {
            if let Instr::Call { callee, .. } = instr {
                match callee {
                    Callee::Builtin(bi) if bi.is_noreturn() => return Some(SummaryBehavior::Exit),
                    Callee::Func(g) if fns.get(g.index()).is_some_and(|s| s.never_returns) => {
                        return Some(SummaryBehavior::Exit)
                    }
                    _ => {}
                }
            }
        }
        if let Terminator::Ret(Some(v)) = &blk.term.0 {
            if const_int(cx, *v).is_some_and(|c| c < 0) || is_const_null(cx, *v) {
                error_return = true;
            }
        }
    }
    error_return.then_some(SummaryBehavior::ErrorReturn)
}

/// No reachable `ret`, with at least one (possibly summarized) exit call.
fn never_returns(cx: &FnCtx, fns: &[FunctionSummary]) -> bool {
    let has_exit_call = cx.func.iter_instrs().any(|(_, _, i, _)| {
        matches!(i, Instr::Call { callee: Callee::Builtin(b), .. } if b.is_noreturn())
            || matches!(i, Instr::Call { callee: Callee::Func(g), .. }
                if fns.get(g.index()).is_some_and(|s| s.never_returns))
    });
    if !has_exit_call {
        return false;
    }
    !cx.func.blocks.iter().enumerate().any(|(bi, blk)| {
        cx.cfg.is_reachable(BlockId(bi as u32)) && matches!(blk.term.0, Terminator::Ret(_))
    })
}

// --- Check summaries ---------------------------------------------------------

fn extract_checks(cx: &FnCtx, fns: &[FunctionSummary]) -> Vec<CheckSummary> {
    let mut out = Vec::new();
    for (_, _, instr, span) in cx.func.iter_instrs() {
        let Instr::Bin { dst, op, lhs, rhs } = instr else {
            continue;
        };
        if !op.is_comparison() {
            continue;
        }
        let Some(Atom::ParamConst {
            param,
            op: norm,
            value,
        }) = resolve_atom_of_cmp(cx, *op, *lhs, *rhs)
        else {
            continue;
        };
        let Some((t_bb, e_bb)) = branch_sides(cx, *dst) else {
            continue;
        };
        if let Some(behavior) = classify_arm(cx, t_bb, fns) {
            out.push(CheckSummary {
                param,
                op: norm,
                value,
                behavior,
                span,
            });
        } else if let Some(behavior) = classify_arm(cx, e_bb, fns) {
            out.push(CheckSummary {
                param,
                op: negate_cmp(norm),
                value,
                behavior,
                span,
            });
        }
    }
    out
}

/// The param-vs-const atom of one comparison instruction, if it has one.
fn resolve_atom_of_cmp(cx: &FnCtx, op: BinOp, lhs: ValueId, rhs: ValueId) -> Option<Atom> {
    match (param_of(cx, lhs), param_of(cx, rhs)) {
        (Some(p), None) => const_int(cx, rhs).map(|c| Atom::ParamConst {
            param: p,
            op,
            value: c,
        }),
        (None, Some(p)) => const_int(cx, lhs).map(|c| Atom::ParamConst {
            param: p,
            op: flip_cmp(op),
            value: c,
        }),
        _ => None,
    }
}

// --- Return transfers --------------------------------------------------------

fn return_transfer(cx: &FnCtx, fns: &[FunctionSummary]) -> Option<ReturnTransfer> {
    let rets: Vec<(BlockId, ValueId)> = cx
        .func
        .blocks
        .iter()
        .enumerate()
        .filter_map(|(bi, blk)| {
            let b = BlockId(bi as u32);
            match blk.term.0 {
                Terminator::Ret(Some(v)) if cx.cfg.is_reachable(b) => Some((b, v)),
                _ => None,
            }
        })
        .collect();
    if rets.is_empty() {
        return None;
    }
    if rets.len() == 1 {
        if let Some(t) = wrapper_transfer(cx, rets[0].1, fns) {
            return Some(t);
        }
    }
    predicate_transfer(cx, &rets)
}

/// `return atoi(s);` / `return helper(s);` / `return p;` shapes.
fn wrapper_transfer(cx: &FnCtx, v: ValueId, fns: &[FunctionSummary]) -> Option<ReturnTransfer> {
    let mut cur = v;
    for _ in 0..8 {
        match cx.ud.def_instr(cx.func, cur)? {
            Instr::Cast { operand, .. } => cur = *operand,
            Instr::Call {
                callee: Callee::Builtin(b),
                ..
            } => return Some(ReturnTransfer::Builtin(*b)),
            Instr::Call {
                callee: Callee::Func(g),
                ..
            } => {
                return match fns.get(g.index()).and_then(|s| s.ret.as_ref()) {
                    Some(ReturnTransfer::Builtin(b)) => Some(ReturnTransfer::Builtin(*b)),
                    _ => None,
                }
            }
            Instr::Param { index, .. } => return Some(ReturnTransfer::Param(*index)),
            _ => return None,
        }
    }
    None
}

/// A return-value leaf: one concrete value the function can return, with
/// the block it is produced in (phi incomings resolve to their
/// predecessor block).
#[derive(Debug, Clone, Copy)]
struct Leaf {
    block: BlockId,
    kind: LeafKind,
}

#[derive(Debug, Clone, Copy)]
enum LeafKind {
    Const(i64),
    Atom(Atom),
    Unknown,
}

fn collect_leaves(cx: &FnCtx, v: ValueId, block: BlockId, depth: usize, out: &mut Vec<Leaf>) {
    if out.len() > MAX_LEAVES {
        return;
    }
    if depth == 0 {
        out.push(Leaf {
            block,
            kind: LeafKind::Unknown,
        });
        return;
    }
    match cx.ud.def_instr(cx.func, v) {
        Some(Instr::Const { val, .. }) => out.push(Leaf {
            block,
            kind: match val.as_int() {
                Some(k) => LeafKind::Const(k),
                None => LeafKind::Unknown,
            },
        }),
        Some(Instr::Cast { operand, .. }) => collect_leaves(cx, *operand, block, depth - 1, out),
        Some(Instr::Phi { incomings, .. }) => {
            for (pred, val) in incomings {
                collect_leaves(cx, *val, *pred, depth - 1, out);
            }
        }
        _ => out.push(Leaf {
            block,
            kind: match resolve_atom(cx, v, 4) {
                Some(a) => LeafKind::Atom(a),
                None => LeafKind::Unknown,
            },
        }),
    }
}

/// The param-vs-const conditions established on every path into `block`
/// by dominating two-way branches. Returns `None` when a dominating
/// branch condition cannot be expressed as a parameter atom (the path
/// condition would be incomplete — unsafe to build a predicate from).
fn path_conds(cx: &FnCtx, block: BlockId) -> Option<Vec<Atom>> {
    let mut conds = Vec::new();
    for (bi, blk) in cx.func.blocks.iter().enumerate() {
        let b = BlockId(bi as u32);
        if !cx.cfg.is_reachable(b) {
            continue;
        }
        let Terminator::CondBr {
            cond,
            then_bb,
            else_bb,
        } = &blk.term.0
        else {
            continue;
        };
        if then_bb == else_bb {
            continue;
        }
        let taken_true =
            cx.cfg.preds[then_bb.index()].as_slice() == [b] && cx.dom.dominates(*then_bb, block);
        let taken_false =
            cx.cfg.preds[else_bb.index()].as_slice() == [b] && cx.dom.dominates(*else_bb, block);
        if !taken_true && !taken_false {
            continue;
        }
        let atom = resolve_atom(cx, *cond, 4)?;
        if taken_true {
            conds.push(atom);
        } else {
            conds.push(atom.negated());
        }
    }
    Some(conds)
}

/// Whether a conjunction of param-vs-const conditions is satisfiable over
/// the integers (per-parameter interval check; `Ne` never restricts).
fn satisfiable(conds: &[(u32, BinOp, i64)]) -> bool {
    let mut params: Vec<u32> = conds.iter().map(|&(p, _, _)| p).collect();
    params.sort_unstable();
    params.dedup();
    for p in params {
        let (mut lo, mut hi) = (i64::MIN, i64::MAX);
        for &(q, op, c) in conds {
            if q != p {
                continue;
            }
            match op {
                BinOp::Ge => lo = lo.max(c),
                BinOp::Gt => lo = lo.max(c.saturating_add(1)),
                BinOp::Le => hi = hi.min(c),
                BinOp::Lt => hi = hi.min(c.saturating_sub(1)),
                BinOp::Eq => {
                    lo = lo.max(c);
                    hi = hi.min(c);
                }
                _ => {}
            }
        }
        if lo > hi {
            return false;
        }
    }
    true
}

fn predicate_transfer(cx: &FnCtx, rets: &[(BlockId, ValueId)]) -> Option<ReturnTransfer> {
    let mut leaves = Vec::new();
    for &(b, v) in rets {
        collect_leaves(cx, v, b, PHI_DEPTH, &mut leaves);
    }
    if leaves.is_empty() || leaves.len() > MAX_LEAVES {
        return None;
    }
    // Classify each leaf as definitely-zero or a nonzero candidate with
    // its full path condition.
    let mut nonzero: Vec<Vec<Atom>> = Vec::new();
    for leaf in &leaves {
        let conds = path_conds(cx, leaf.block)?;
        match leaf.kind {
            LeafKind::Unknown => return None,
            LeafKind::Const(0) => continue,
            LeafKind::Const(_) => nonzero.push(conds),
            LeafKind::Atom(a) => {
                let mut full = conds;
                full.push(a);
                // A comparison leaf contradicted by its own path
                // conditions always evaluates to zero.
                let flat: Option<Vec<(u32, BinOp, i64)>> = full
                    .iter()
                    .map(|atom| match *atom {
                        Atom::ParamConst { param, op, value } => Some((param, op, value)),
                        Atom::ParamParam { .. } => None,
                    })
                    .collect();
                match flat {
                    Some(fl) if !satisfiable(&fl) => continue,
                    _ => nonzero.push(full),
                }
            }
        }
    }
    if nonzero.len() != 1 {
        return None;
    }
    let conds = nonzero.pop().expect("one nonzero leaf");
    if conds.is_empty() {
        return None;
    }
    // Single param-vs-param comparison with no other conditions.
    if let [Atom::ParamParam { left, op, right }] = conds.as_slice() {
        return Some(ReturnTransfer::ParamPredicate {
            left: *left,
            op: *op,
            right: *right,
        });
    }
    // Otherwise every condition must constrain the same single parameter.
    let mut param = None;
    let mut flat = Vec::new();
    for atom in &conds {
        let Atom::ParamConst {
            param: p,
            op,
            value,
        } = *atom
        else {
            return None;
        };
        match param {
            None => param = Some(p),
            Some(q) if q == p => {}
            Some(_) => return None,
        }
        if !flat.contains(&(op, value)) {
            flat.push((op, value));
        }
    }
    Some(ReturnTransfer::Predicate {
        param: param?,
        conds: flat,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(src: &str) -> AnalyzedModule {
        let p = spex_lang::parse_program(src).unwrap();
        let m = spex_ir::lower_program(&p).unwrap();
        AnalyzedModule::build(m)
    }

    fn summary_of(am: &AnalyzedModule, name: &str) -> FunctionSummary {
        let (s, _) = ModuleSummaries::compute(am);
        s.get(am.module.function_by_name(name).unwrap()).clone()
    }

    #[test]
    fn predicate_from_short_circuit_conjunction() {
        let am = setup("int valid_port(int p) { return p >= 1 && p <= 65535; }");
        let s = summary_of(&am, "valid_port");
        match s.ret {
            Some(ReturnTransfer::Predicate { param, conds }) => {
                assert_eq!(param, 0);
                assert!(conds.contains(&(BinOp::Ge, 1)), "conds: {conds:?}");
                assert!(conds.contains(&(BinOp::Le, 65535)), "conds: {conds:?}");
            }
            other => panic!("expected predicate, got {other:?}"),
        }
    }

    #[test]
    fn predicate_from_early_return_chain() {
        let am = setup(
            "int in_range(int v) {
                 if (v < 8) { return 0; }
                 if (v > 128) { return 0; }
                 return 1;
             }",
        );
        let s = summary_of(&am, "in_range");
        match s.ret {
            Some(ReturnTransfer::Predicate { param, conds }) => {
                assert_eq!(param, 0);
                assert!(conds.contains(&(BinOp::Ge, 8)), "conds: {conds:?}");
                assert!(conds.contains(&(BinOp::Le, 128)), "conds: {conds:?}");
            }
            other => panic!("expected predicate, got {other:?}"),
        }
    }

    #[test]
    fn single_comparison_predicate() {
        let am = setup("int positive(int x) { return x > 0; }");
        let s = summary_of(&am, "positive");
        assert_eq!(
            s.ret,
            Some(ReturnTransfer::Predicate {
                param: 0,
                conds: vec![(BinOp::Gt, 0)],
            })
        );
    }

    #[test]
    fn param_vs_param_predicate() {
        let am = setup("int ordered(int lo, int hi) { return lo <= hi; }");
        let s = summary_of(&am, "ordered");
        assert_eq!(
            s.ret,
            Some(ReturnTransfer::ParamPredicate {
                left: 0,
                op: BinOp::Le,
                right: 1,
            })
        );
    }

    #[test]
    fn builtin_wrapper_and_nested_wrapper() {
        let am = setup(
            "long parse_num(char* s) { return strtol(s, 0, 10); }
             long parse_num2(char* s) { return parse_num(s); }",
        );
        assert_eq!(
            summary_of(&am, "parse_num").ret,
            Some(ReturnTransfer::Builtin(Builtin::Strtol))
        );
        assert_eq!(
            summary_of(&am, "parse_num2").ret,
            Some(ReturnTransfer::Builtin(Builtin::Strtol))
        );
    }

    #[test]
    fn check_summary_records_exit_guard() {
        let am = setup(
            "void check_port(int p) {
                 if (p > 65535) { fprintf(stderr, \"bad\"); exit(1); }
             }",
        );
        let s = summary_of(&am, "check_port");
        assert_eq!(s.checks.len(), 1);
        let c = &s.checks[0];
        assert_eq!(c.param, 0);
        assert_eq!(c.op, BinOp::Gt);
        assert_eq!(c.value, 65535);
        assert_eq!(c.behavior, SummaryBehavior::Exit);
    }

    #[test]
    fn check_summary_through_never_returning_helper() {
        let am = setup(
            "void die(char* m) { fprintf(stderr, \"%s\", m); exit(1); }
             void check(int n) { if (n < 0) { die(\"negative\"); } }",
        );
        let s = summary_of(&am, "check");
        assert_eq!(s.checks.len(), 1);
        assert_eq!(s.checks[0].behavior, SummaryBehavior::Exit);
        assert!(summary_of(&am, "die").never_returns);
    }

    #[test]
    fn error_return_check() {
        let am = setup("int set(int v) { if (v > 9) { return -1; } return 0; }");
        let s = summary_of(&am, "set");
        assert_eq!(s.checks.len(), 1);
        assert_eq!(s.checks[0].behavior, SummaryBehavior::ErrorReturn);
        assert_eq!(s.checks[0].op, BinOp::Gt);
        assert_eq!(s.checks[0].value, 9);
    }

    #[test]
    fn plain_helper_is_empty() {
        let am = setup("int add(int a, int b) { return a + b; }");
        let s = summary_of(&am, "add");
        assert!(s.ret.is_none());
        assert!(s.checks.is_empty());
        assert!(!s.never_returns);
        assert!(s.is_empty());
    }

    #[test]
    fn recursion_converges_deterministically() {
        let am = setup("int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }");
        let (s1, st1) = ModuleSummaries::compute(&am);
        let (s2, _) = ModuleSummaries::compute(&am);
        let f = am.module.function_by_name("fact").unwrap();
        assert_eq!(s1.get(f), s2.get(f));
        assert!(!s1.get(f).widened);
        assert_eq!(st1.runs, 1);
    }

    #[test]
    fn incremental_reuses_clean_components() {
        let am = setup(
            "int leaf(int x) { return x > 0; }
             int mid(int x) { return leaf(x); }
             int top(int x) { return mid(x); }
             int other(int x) { return x + 1; }",
        );
        let (prev, _) = ModuleSummaries::compute(&am);
        let n = am.module.functions.len();
        let leaf = am.module.function_by_name("leaf").unwrap();
        let mut dirty = vec![false; n];
        dirty[leaf.index()] = true;
        let (next, stats) = ModuleSummaries::compute_incremental(&am, Some((&prev, &dirty)));
        // leaf + its transitive callers re-ran; `other` was reused.
        assert_eq!(stats.runs, 3);
        assert_eq!(stats.hits, 1);
        let other = am.module.function_by_name("other").unwrap();
        assert!(!stats.recomputed[other.index()]);
        for fi in 0..n {
            assert_eq!(prev.get(FuncId(fi as u32)), next.get(FuncId(fi as u32)));
        }
    }

    #[test]
    fn no_dirt_means_all_hits() {
        let am = setup("int f(int x) { return x > 3; } int g(int x) { return f(x); }");
        let (prev, _) = ModuleSummaries::compute(&am);
        let dirty = vec![false; am.module.functions.len()];
        let (_, stats) = ModuleSummaries::compute_incremental(&am, Some((&prev, &dirty)));
        assert_eq!(stats.runs, 0);
        assert_eq!(stats.hits, 2);
    }
}
