//! Call graph construction, including address-taken function discovery for
//! calls through function-pointer tables.

use spex_ir::{Callee, ConstVal, FuncId, Instr, Module};
use std::collections::{HashMap, HashSet};

/// One call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CallSite {
    /// Caller function.
    pub caller: FuncId,
    /// Block within the caller.
    pub block: spex_ir::BlockId,
    /// Instruction index within the block.
    pub index: usize,
}

/// Module-level call graph.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// Direct call sites per callee.
    pub callers_of: HashMap<FuncId, Vec<CallSite>>,
    /// Functions whose address is taken somewhere (possible indirect-call
    /// targets), with their parameter count.
    pub address_taken: Vec<(FuncId, usize)>,
}

impl CallGraph {
    /// Builds the call graph for a module.
    pub fn build(m: &Module) -> CallGraph {
        let mut callers_of: HashMap<FuncId, Vec<CallSite>> = HashMap::new();
        let mut address_taken: HashSet<FuncId> = HashSet::new();

        // FuncRef constants in global initializers (handler tables).
        for g in &m.globals {
            collect_funcrefs(&g.init, &mut address_taken);
        }

        for (fi, f) in m.functions.iter().enumerate() {
            let caller = FuncId(fi as u32);
            for (b, i, instr, _) in f.iter_instrs() {
                match instr {
                    Instr::Call {
                        callee: Callee::Func(target),
                        ..
                    } => {
                        callers_of.entry(*target).or_default().push(CallSite {
                            caller,
                            block: b,
                            index: i,
                        });
                    }
                    Instr::Const {
                        val: ConstVal::FuncRef(target),
                        ..
                    } => {
                        address_taken.insert(*target);
                    }
                    _ => {}
                }
            }
        }

        let address_taken = address_taken
            .into_iter()
            .map(|f| (f, m.functions[f.index()].params.len()))
            .collect();
        CallGraph {
            callers_of,
            address_taken,
        }
    }

    /// Possible targets of an indirect call with `arity` arguments:
    /// address-taken functions whose parameter count matches.
    pub fn indirect_targets(&self, arity: usize) -> Vec<FuncId> {
        self.address_taken
            .iter()
            .filter(|(_, n)| *n == arity)
            .map(|(f, _)| *f)
            .collect()
    }

    /// Direct call sites of a function.
    pub fn callers(&self, f: FuncId) -> &[CallSite] {
        self.callers_of.get(&f).map(|v| v.as_slice()).unwrap_or(&[])
    }
}

fn collect_funcrefs(c: &ConstVal, out: &mut HashSet<FuncId>) {
    match c {
        ConstVal::FuncRef(f) => {
            out.insert(*f);
        }
        ConstVal::Aggregate(items) => {
            for i in items {
                collect_funcrefs(i, out);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(src: &str) -> (Module, CallGraph) {
        let p = spex_lang::parse_program(src).unwrap();
        let m = spex_ir::lower_program(&p).unwrap();
        let cg = CallGraph::build(&m);
        (m, cg)
    }

    #[test]
    fn records_direct_callers() {
        let (m, cg) = build(
            "int helper(int x) { return x; }
             int a() { return helper(1); }
             int b() { return helper(2) + helper(3); }",
        );
        let helper = m.function_by_name("helper").unwrap();
        assert_eq!(cg.callers(helper).len(), 3);
    }

    #[test]
    fn finds_address_taken_in_tables() {
        let (m, cg) = build(
            r#"
            struct cmd { char* name; fnptr handler; };
            int set_root(char* v) { return 0; }
            int set_port(char* v) { return 0; }
            struct cmd cmds[] = { { "Root", set_root }, { "Port", set_port } };
            "#,
        );
        let root = m.function_by_name("set_root").unwrap();
        let port = m.function_by_name("set_port").unwrap();
        let targets = cg.indirect_targets(1);
        assert!(targets.contains(&root));
        assert!(targets.contains(&port));
    }

    #[test]
    fn arity_filtering_of_indirect_targets() {
        let (_, cg) = build(
            r#"
            int one(char* v) { return 0; }
            int two(char* a, char* b) { return 0; }
            fnptr p1 = one;
            fnptr p2 = two;
            "#,
        );
        assert_eq!(cg.indirect_targets(1).len(), 1);
        assert_eq!(cg.indirect_targets(2).len(), 1);
        assert_eq!(cg.indirect_targets(3).len(), 0);
    }
}
