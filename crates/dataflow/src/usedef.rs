//! Def-use chains over SSA function bodies.

use spex_ir::{BlockId, Function, Instr, ValueId};
use std::collections::HashMap;

/// Where a value is used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UseSite {
    /// Operand of the `idx`-th instruction of a block.
    Instr(BlockId, usize),
    /// Operand of a block's terminator.
    Term(BlockId),
}

impl UseSite {
    /// The block the use occurs in.
    pub fn block(&self) -> BlockId {
        match self {
            UseSite::Instr(b, _) | UseSite::Term(b) => *b,
        }
    }
}

/// Def and use sites for every value of one function.
#[derive(Debug, Clone, Default)]
pub struct UseDefs {
    /// Definition site of each value (`None` for values with no remaining
    /// definition, e.g. removed by DCE).
    pub def_site: HashMap<ValueId, (BlockId, usize)>,
    /// Use sites of each value.
    pub uses: HashMap<ValueId, Vec<UseSite>>,
}

impl UseDefs {
    /// Builds chains for a function.
    pub fn build(f: &Function) -> UseDefs {
        let mut def_site = HashMap::new();
        let mut uses: HashMap<ValueId, Vec<UseSite>> = HashMap::new();
        for (b, blk) in f.blocks.iter().enumerate() {
            let bid = BlockId(b as u32);
            for (i, (instr, _)) in blk.instrs.iter().enumerate() {
                if let Some(d) = instr.def() {
                    def_site.insert(d, (bid, i));
                }
                for u in instr.uses() {
                    uses.entry(u).or_default().push(UseSite::Instr(bid, i));
                }
            }
            for u in blk.term.0.uses() {
                uses.entry(u).or_default().push(UseSite::Term(bid));
            }
        }
        UseDefs { def_site, uses }
    }

    /// The instruction at a use site (`None` for terminator sites).
    pub fn instr_at<'f>(&self, f: &'f Function, site: UseSite) -> Option<&'f Instr> {
        match site {
            UseSite::Instr(b, i) => f.blocks.get(b.index())?.instrs.get(i).map(|(i, _)| i),
            UseSite::Term(_) => None,
        }
    }

    /// The defining instruction of a value, if present.
    pub fn def_instr<'f>(&self, f: &'f Function, v: ValueId) -> Option<&'f Instr> {
        let (b, i) = self.def_site.get(&v)?;
        f.blocks.get(b.index())?.instrs.get(*i).map(|(i, _)| i)
    }

    /// Use sites of a value (empty slice if unused).
    pub fn uses_of(&self, v: ValueId) -> &[UseSite] {
        self.uses.get(&v).map(|v| v.as_slice()).unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spex_ir::promote_to_ssa;

    fn build(src: &str, func: &str) -> (Function, UseDefs) {
        let p = spex_lang::parse_program(src).unwrap();
        let m = spex_ir::lower_program(&p).unwrap();
        let id = m.function_by_name(func).unwrap();
        let f = promote_to_ssa(&m.functions[id.index()]);
        let ud = UseDefs::build(&f);
        (f, ud)
    }

    #[test]
    fn finds_uses_of_parameter() {
        let (f, ud) = build("int f(int x) { return x + x; }", "f");
        // The Param value is used twice by the add.
        let param = f
            .iter_instrs()
            .find_map(|(_, _, i, _)| match i {
                Instr::Param { dst, .. } => Some(*dst),
                _ => None,
            })
            .unwrap();
        assert_eq!(ud.uses_of(param).len(), 2);
    }

    #[test]
    fn def_instr_round_trip() {
        let (f, ud) = build("int f() { int y = 1 + 2; return y; }", "f");
        for (_, _, instr, _) in f.iter_instrs() {
            if let Some(d) = instr.def() {
                assert_eq!(ud.def_instr(&f, d), Some(instr));
            }
        }
    }

    #[test]
    fn terminator_uses_are_recorded() {
        let (f, ud) = build("int f(int x) { if (x) { return 1; } return 0; }", "f");
        let cond_uses: Vec<_> = ud
            .uses
            .values()
            .flat_map(|sites| sites.iter())
            .filter(|s| matches!(s, UseSite::Term(_)))
            .collect();
        assert!(!cond_uses.is_empty());
        let _ = f;
    }
}
