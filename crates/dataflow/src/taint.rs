//! Per-parameter taint propagation.
//!
//! For each configuration parameter, SPEX tracks the data flow of the
//! program variable(s) holding the parameter's value and records every
//! instruction that value reaches (§2.2). This module implements that
//! propagation as a breadth-first worklist over SSA values and abstract
//! memory locations:
//!
//! * value → value through arithmetic, casts, comparisons and phis;
//! * value → memory through plain stores (field-sensitive);
//! * memory → value through loads of may-aliasing locations;
//! * value → value across calls (arguments into parameters, returns back to
//!   call sites), including indirect calls through function-pointer tables;
//! * through known library calls that derive their result from an argument
//!   (`atoi`, `strtol`, `strdup`, `htons`, ...), including `sscanf`-style
//!   out-parameters.
//!
//! No pointer-alias analysis is performed (matching §4.3 of the paper):
//! flow through `*p` for an arbitrary pointer `p` is dropped.

use crate::memloc::MemLoc;
use crate::AnalyzedModule;
use spex_ir::{Callee, FuncId, GlobalId, Instr, Terminator, ValueId};
use spex_lang::builtins::Builtin;
use std::collections::{HashMap, VecDeque};

/// A seed for taint propagation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TaintRoot {
    /// A memory location (global variable or field/element of one).
    Mem(MemLoc),
    /// The `index`-th parameter of a function (parse-function mapping).
    FuncParam(FuncId, u32),
    /// A specific SSA value in a function (getter-call mapping).
    Value(FuncId, ValueId),
}

impl TaintRoot {
    /// Convenience constructor for a whole global.
    pub fn global(g: GlobalId) -> TaintRoot {
        TaintRoot::Mem(MemLoc::Global(g, Vec::new()))
    }
}

/// Result of one taint run: everything a parameter's value reaches.
#[derive(Debug, Clone, Default)]
pub struct TaintResult {
    /// Tainted SSA values with their BFS depth from the roots.
    pub values: HashMap<(FuncId, ValueId), u32>,
    /// Tainted memory locations with their BFS depth.
    pub mem: HashMap<MemLoc, u32>,
}

impl TaintResult {
    /// Whether a value is tainted.
    pub fn is_tainted(&self, f: FuncId, v: ValueId) -> bool {
        self.values.contains_key(&(f, v))
    }

    /// BFS depth of a tainted value (`None` if untainted).
    pub fn depth(&self, f: FuncId, v: ValueId) -> Option<u32> {
        self.values.get(&(f, v)).copied()
    }

    /// Functions touched by this parameter's data flow.
    pub fn touched_functions(&self) -> Vec<FuncId> {
        let mut out: Vec<FuncId> = self.values.keys().map(|(f, _)| *f).collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Item {
    Value(FuncId, ValueId),
    Mem(MemLoc),
}

/// The propagation engine. Create once per module, run once per parameter.
pub struct TaintEngine<'a> {
    am: &'a AnalyzedModule,
    /// Load sites indexed for fast memory→value steps:
    /// `(func, load dst, abstract loc)`.
    loads: Vec<(FuncId, ValueId, MemLoc)>,
    /// Param value of each function, by parameter index.
    param_values: Vec<Vec<Option<ValueId>>>,
}

impl<'a> TaintEngine<'a> {
    /// Prepares the engine's indexes.
    pub fn new(am: &'a AnalyzedModule) -> Self {
        let mut loads = Vec::new();
        let mut param_values = Vec::new();
        for (fi, f) in am.module.functions.iter().enumerate() {
            let fid = FuncId(fi as u32);
            let mut params = vec![None; f.params.len()];
            for (_, _, instr, _) in f.iter_instrs() {
                match instr {
                    Instr::Load { dst, place } => {
                        if let Some(loc) = MemLoc::from_place(fid, place) {
                            loads.push((fid, *dst, loc));
                        }
                    }
                    Instr::Param { dst, index } if (*index as usize) < params.len() => {
                        params[*index as usize] = Some(*dst);
                    }
                    _ => {}
                }
            }
            param_values.push(params);
        }
        TaintEngine {
            am,
            loads,
            param_values,
        }
    }

    /// Runs taint propagation from the given roots.
    pub fn run(&self, roots: &[TaintRoot]) -> TaintResult {
        let _span = spex_obs::span("dataflow.taint");
        let mut result = TaintResult::default();
        let mut queue: VecDeque<(Item, u32)> = VecDeque::new();

        for root in roots {
            match root {
                TaintRoot::Mem(loc) => queue.push_back((Item::Mem(loc.clone()), 0)),
                TaintRoot::FuncParam(f, idx) => {
                    if let Some(Some(v)) = self
                        .param_values
                        .get(f.index())
                        .and_then(|p| p.get(*idx as usize))
                    {
                        queue.push_back((Item::Value(*f, *v), 0));
                    }
                }
                TaintRoot::Value(f, v) => queue.push_back((Item::Value(*f, *v), 0)),
            }
        }

        while let Some((item, depth)) = queue.pop_front() {
            match item {
                Item::Value(f, v) => {
                    if result.values.contains_key(&(f, v)) {
                        continue;
                    }
                    result.values.insert((f, v), depth);
                    self.step_value(f, v, depth, &mut queue);
                }
                Item::Mem(loc) => {
                    if result.mem.keys().any(|l| l == &loc) {
                        continue;
                    }
                    result.mem.insert(loc.clone(), depth);
                    self.step_mem(&loc, depth, &mut queue);
                }
            }
        }
        result
    }

    fn step_value(&self, f: FuncId, v: ValueId, depth: u32, queue: &mut VecDeque<(Item, u32)>) {
        let func = &self.am.module.functions[f.index()];
        let ud = &self.am.usedefs[f.index()];
        for site in ud.uses_of(v) {
            match ud.instr_at(func, *site) {
                Some(Instr::Bin { dst, .. })
                | Some(Instr::Un { dst, .. })
                | Some(Instr::Cast { dst, .. })
                | Some(Instr::Phi { dst, .. }) => {
                    queue.push_back((Item::Value(f, *dst), depth + 1));
                }
                Some(Instr::Store { place, value }) if *value == v => {
                    if let Some(loc) = MemLoc::from_place(f, place) {
                        queue.push_back((Item::Mem(loc), depth + 1));
                    }
                    // Store through an unknown pointer: dropped (no alias
                    // analysis).
                }
                Some(Instr::Call { dst, callee, args }) => {
                    self.step_call(f, v, *dst, callee, args, depth, queue, func);
                }
                // Loads with a tainted pointer/index, AddrOf, or terminator
                // uses: no value flow.
                _ => {}
            }
        }
        // Return-value flow: `v` returned from `f` taints call results.
        for blk in &func.blocks {
            if let Terminator::Ret(Some(rv)) = &blk.term.0 {
                if *rv == v {
                    for cs in self.am.callgraph.callers(f) {
                        let caller = &self.am.module.functions[cs.caller.index()];
                        if let Some((Instr::Call { dst: Some(d), .. }, _)) =
                            caller.blocks[cs.block.index()].instrs.get(cs.index)
                        {
                            queue.push_back((Item::Value(cs.caller, *d), depth + 1));
                        }
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn step_call(
        &self,
        f: FuncId,
        v: ValueId,
        dst: Option<ValueId>,
        callee: &Callee,
        args: &[ValueId],
        depth: u32,
        queue: &mut VecDeque<(Item, u32)>,
        func: &spex_ir::Function,
    ) {
        let arg_positions: Vec<usize> = args
            .iter()
            .enumerate()
            .filter(|(_, a)| **a == v)
            .map(|(i, _)| i)
            .collect();
        if arg_positions.is_empty() {
            return;
        }
        match callee {
            Callee::Builtin(b) => {
                if propagates_through(*b) {
                    if let Some(d) = dst {
                        queue.push_back((Item::Value(f, d), depth + 1));
                    }
                }
                // `sscanf(src, fmt, &out)`: source taints the out-params.
                if *b == Builtin::Sscanf && arg_positions.contains(&0) {
                    for out_arg in args.iter().skip(2) {
                        if let Some(loc) = self.addr_of_target(f, func, *out_arg) {
                            queue.push_back((Item::Mem(loc), depth + 1));
                        }
                    }
                }
                // `strcpy(dst, src)` family: source taints destination
                // memory when the destination is a direct address.
                if matches!(b, Builtin::Strcpy | Builtin::Strncpy | Builtin::Strcat)
                    && arg_positions.contains(&1)
                {
                    if let Some(loc) = self.addr_of_target(f, func, args[0]) {
                        queue.push_back((Item::Mem(loc), depth + 1));
                    }
                }
            }
            Callee::Func(target) => {
                for pos in &arg_positions {
                    self.taint_param(*target, *pos, depth, queue);
                }
            }
            Callee::Indirect(_) => {
                for target in self.am.callgraph.indirect_targets(args.len()) {
                    for pos in &arg_positions {
                        self.taint_param(target, *pos, depth, queue);
                    }
                }
            }
        }
    }

    fn taint_param(&self, f: FuncId, index: usize, depth: u32, queue: &mut VecDeque<(Item, u32)>) {
        if let Some(Some(pv)) = self.param_values.get(f.index()).and_then(|p| p.get(index)) {
            queue.push_back((Item::Value(f, *pv), depth + 1));
        }
    }

    /// If `v` is defined by `AddrOf(place)`, the abstract location of that
    /// place.
    fn addr_of_target(&self, f: FuncId, func: &spex_ir::Function, v: ValueId) -> Option<MemLoc> {
        let ud = &self.am.usedefs[f.index()];
        match ud.def_instr(func, v) {
            Some(Instr::AddrOf { place, .. }) => MemLoc::from_place(f, place),
            _ => None,
        }
    }

    fn step_mem(&self, loc: &MemLoc, depth: u32, queue: &mut VecDeque<(Item, u32)>) {
        for (f, dst, lloc) in &self.loads {
            if lloc.may_alias(loc) {
                queue.push_back((Item::Value(*f, *dst), depth + 1));
            }
        }
    }
}

/// Builtins whose result derives from their arguments, so taint flows
/// through the call.
fn propagates_through(b: Builtin) -> bool {
    matches!(
        b,
        Builtin::Atoi
            | Builtin::Atol
            | Builtin::Atof
            | Builtin::Strtol
            | Builtin::Strtoll
            | Builtin::Strtod
            | Builtin::Strdup
            | Builtin::Strchr
            | Builtin::Strstr
            | Builtin::Strlen
            | Builtin::Htons
            | Builtin::Ntohs
            | Builtin::InetAddr
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AnalyzedModule;

    fn setup(src: &str) -> AnalyzedModule {
        let p = spex_lang::parse_program(src).unwrap();
        let m = spex_ir::lower_program(&p).unwrap();
        AnalyzedModule::build(m)
    }

    fn run_on_global(am: &AnalyzedModule, name: &str) -> TaintResult {
        let g = am.module.global_by_name(name).unwrap();
        TaintEngine::new(am).run(&[TaintRoot::global(g)])
    }

    /// Finds the dst of the first instruction matching `pred` in `func`.
    fn find_value(
        am: &AnalyzedModule,
        func: &str,
        pred: impl Fn(&Instr) -> Option<ValueId>,
    ) -> (FuncId, ValueId) {
        let fid = am.module.function_by_name(func).unwrap();
        let f = &am.module.functions[fid.index()];
        for (_, _, instr, _) in f.iter_instrs() {
            if let Some(v) = pred(instr) {
                return (fid, v);
            }
        }
        panic!("no matching instruction in {func}");
    }

    #[test]
    fn taints_through_arithmetic_and_comparison() {
        let am = setup(
            "int limit = 10;
             int check(int x) { int d = limit * 2; if (x > d) { return 1; } return 0; }",
        );
        let r = run_on_global(&am, "limit");
        // The multiply result and the comparison result are both tainted.
        let (f, mul) = find_value(&am, "check", |i| match i {
            Instr::Bin {
                dst,
                op: spex_lang::ast::BinOp::Mul,
                ..
            } => Some(*dst),
            _ => None,
        });
        assert!(r.is_tainted(f, mul));
        let (f, cmp) = find_value(&am, "check", |i| match i {
            Instr::Bin {
                dst,
                op: spex_lang::ast::BinOp::Gt,
                ..
            } => Some(*dst),
            _ => None,
        });
        assert!(r.is_tainted(f, cmp));
    }

    #[test]
    fn taints_across_function_calls() {
        // Mirrors Figure 3(b) of the paper: MySQL's ft_stopword_file passed
        // through my_open into open().
        let am = setup(
            r#"
            char* stopword_file = "/etc/words";
            int my_open(char* file_name) { return open(file_name, 0); }
            void init() { my_open(stopword_file); }
            "#,
        );
        let r = run_on_global(&am, "stopword_file");
        let (f, param) = find_value(&am, "my_open", |i| match i {
            Instr::Param { dst, index: 0 } => Some(*dst),
            _ => None,
        });
        assert!(r.is_tainted(f, param), "callee parameter must be tainted");
    }

    #[test]
    fn taints_return_values_back_to_callers() {
        let am = setup(
            "int timeout = 30;
             int get_timeout() { return timeout; }
             void use() { int t = get_timeout(); sleep(t); }",
        );
        let r = run_on_global(&am, "timeout");
        let (f, call_dst) = find_value(&am, "use", |i| match i {
            Instr::Call {
                dst: Some(d),
                callee: Callee::Func(_),
                ..
            } => Some(*d),
            _ => None,
        });
        assert!(r.is_tainted(f, call_dst));
    }

    #[test]
    fn taints_through_atoi_conversion() {
        let am = setup(
            "int port_num = 0;
             void parse(char* value) { port_num = atoi(value); }
             void startup() { int p = port_num; bind(0, p); }",
        );
        // Root at the parse function's parameter.
        let fid = am.module.function_by_name("parse").unwrap();
        let r = TaintEngine::new(&am).run(&[TaintRoot::FuncParam(fid, 0)]);
        // Flow: value -> atoi -> store port_num -> load in startup.
        let (f, loaded) = find_value(&am, "startup", |i| match i {
            Instr::Load { dst, .. } => Some(*dst),
            _ => None,
        });
        assert!(r.is_tainted(f, loaded));
    }

    #[test]
    fn field_sensitive_store_and_load() {
        let am = setup(
            "struct cfg { int timeout; int retries; };
             struct cfg server;
             void set_timeout(int t) { server.timeout = t; }
             int get_timeout() { return server.timeout; }
             int get_retries() { return server.retries; }",
        );
        let fid = am.module.function_by_name("set_timeout").unwrap();
        let r = TaintEngine::new(&am).run(&[TaintRoot::FuncParam(fid, 0)]);
        let (f, timeout_load) = find_value(&am, "get_timeout", |i| match i {
            Instr::Load { dst, .. } => Some(*dst),
            _ => None,
        });
        assert!(r.is_tainted(f, timeout_load), "same field must be tainted");
        let (f2, retries_load) = find_value(&am, "get_retries", |i| match i {
            Instr::Load { dst, .. } => Some(*dst),
            _ => None,
        });
        assert!(
            !r.is_tainted(f2, retries_load),
            "sibling field must stay clean (field sensitivity)"
        );
    }

    #[test]
    fn no_flow_through_unknown_pointers() {
        // Without alias analysis, a store through a pointer parameter does
        // not reach the global it happens to point at.
        let am = setup(
            "int knob = 1;
             void set_via_ptr(int* p, int v) { *p = v; }
             void caller(int v) { set_via_ptr(&knob, v); }",
        );
        let fid = am.module.function_by_name("caller").unwrap();
        let r = TaintEngine::new(&am).run(&[TaintRoot::FuncParam(fid, 0)]);
        // knob's memory location must not be tainted.
        let g = am.module.global_by_name("knob").unwrap();
        let loc = MemLoc::Global(g, vec![]);
        assert!(!r.mem.keys().any(|l| l.may_alias(&loc)));
    }

    #[test]
    fn indirect_calls_taint_handler_params() {
        let am = setup(
            r#"
            struct cmd { char* name; fnptr handler; };
            int set_root(char* arg) { return open(arg, 0); }
            struct cmd cmds[] = { { "Root", set_root } };
            void dispatch(char* value) {
                cmds[0].handler(value);
            }
            "#,
        );
        let fid = am.module.function_by_name("dispatch").unwrap();
        let r = TaintEngine::new(&am).run(&[TaintRoot::FuncParam(fid, 0)]);
        let (f, param) = find_value(&am, "set_root", |i| match i {
            Instr::Param { dst, index: 0 } => Some(*dst),
            _ => None,
        });
        assert!(r.is_tainted(f, param));
    }

    #[test]
    fn sscanf_out_param_is_tainted() {
        let am = setup(
            r#"
            void parse(char* token) {
                int i = 0;
                sscanf(token, "%i", &i);
                sleep(i);
            }
            "#,
        );
        let fid = am.module.function_by_name("parse").unwrap();
        let r = TaintEngine::new(&am).run(&[TaintRoot::FuncParam(fid, 0)]);
        // The sleep argument derives from the scanned-out value.
        let f = &am.module.functions[fid.index()];
        let sleep_arg_tainted = f.iter_instrs().any(|(_, _, i, _)| match i {
            Instr::Call {
                callee: Callee::Builtin(Builtin::Sleep),
                args,
                ..
            } => args.iter().any(|a| r.is_tainted(fid, *a)),
            _ => false,
        });
        assert!(sleep_arg_tainted);
    }

    #[test]
    fn depth_increases_along_the_path() {
        let am = setup(
            "int a = 1;
             void f() { int x = a; int y = x + 1; int z = y + 1; sleep(z); }",
        );
        let r = run_on_global(&am, "a");
        let depths: Vec<u32> = r.values.values().copied().collect();
        let max = depths.iter().max().copied().unwrap_or(0);
        assert!(max >= 2, "chain must accumulate depth, got {max}");
    }

    #[test]
    fn untainted_parameter_stays_clean() {
        let am = setup(
            "int a = 1; int b = 2;
             int use_b() { return b; }",
        );
        let r = run_on_global(&am, "a");
        let (f, load_b) = find_value(&am, "use_b", |i| match i {
            Instr::Load { dst, .. } => Some(*dst),
            _ => None,
        });
        assert!(!r.is_tainted(f, load_b));
    }
}
