//! Backward program slicing over SSA values.
//!
//! SPEX's second inference pass scans "only on the program slice containing
//! the data-flow of each parameter" (§2.2). The per-parameter taint results
//! already form that slice; this module adds the complementary *backward*
//! closure — everything a given value was computed from — used to relate
//! branch conditions to parameters and to render error-report context.

use crate::usedef::UseDefs;
use spex_ir::{Function, Instr, Place, ValueId};
use std::collections::HashSet;

/// A backward slice of one value: the values and memory reads feeding it.
#[derive(Debug, Clone, Default)]
pub struct BackwardSlice {
    /// Values in the slice (includes the seed).
    pub values: HashSet<ValueId>,
    /// Places loaded from inside the slice (the slice's memory inputs).
    pub loaded_places: Vec<Place>,
}

impl BackwardSlice {
    /// Computes the intra-procedural backward slice of `seed` in `f`.
    pub fn compute(f: &Function, ud: &UseDefs, seed: ValueId) -> BackwardSlice {
        let mut slice = BackwardSlice::default();
        let mut work = vec![seed];
        while let Some(v) = work.pop() {
            if !slice.values.insert(v) {
                continue;
            }
            match ud.def_instr(f, v) {
                Some(Instr::Load { place, .. }) => {
                    slice.loaded_places.push(place.clone());
                    // Do not cross memory: loads are slice inputs.
                    for pv in place.operand_values() {
                        work.push(pv);
                    }
                }
                Some(instr) => {
                    for u in instr.uses() {
                        work.push(u);
                    }
                }
                None => {}
            }
        }
        slice
    }

    /// Whether the slice contains any of `values`.
    pub fn intersects(&self, values: &HashSet<ValueId>) -> bool {
        self.values.iter().any(|v| values.contains(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spex_ir::promote_to_ssa;

    fn setup(src: &str, func: &str) -> (Function, UseDefs) {
        let p = spex_lang::parse_program(src).unwrap();
        let m = spex_ir::lower_program(&p).unwrap();
        let id = m.function_by_name(func).unwrap();
        let f = promote_to_ssa(&m.functions[id.index()]);
        let ud = UseDefs::build(&f);
        (f, ud)
    }

    #[test]
    fn slice_of_sum_contains_operands() {
        let (f, ud) = setup("int f(int a, int b) { int c = a + b; return c; }", "f");
        let ret_val = f
            .blocks
            .iter()
            .find_map(|b| match &b.term.0 {
                spex_ir::Terminator::Ret(Some(v)) => Some(*v),
                _ => None,
            })
            .unwrap();
        let slice = BackwardSlice::compute(&f, &ud, ret_val);
        // The add and both params are in the slice.
        assert!(slice.values.len() >= 3);
    }

    #[test]
    fn slice_stops_at_loads() {
        let (f, ud) = setup("int g = 5; int f() { int x = g; return x + 1; }", "f");
        let ret_val = f
            .blocks
            .iter()
            .find_map(|b| match &b.term.0 {
                spex_ir::Terminator::Ret(Some(v)) => Some(*v),
                _ => None,
            })
            .unwrap();
        let slice = BackwardSlice::compute(&f, &ud, ret_val);
        assert_eq!(slice.loaded_places.len(), 1, "one memory input: g");
    }

    #[test]
    fn unrelated_values_not_in_slice() {
        let (f, ud) = setup(
            "int f(int a, int b) { int unused = b * 2; return a + 1; }",
            "f",
        );
        let ret_val = f
            .blocks
            .iter()
            .find_map(|b| match &b.term.0 {
                spex_ir::Terminator::Ret(Some(v)) => Some(*v),
                _ => None,
            })
            .unwrap();
        let slice = BackwardSlice::compute(&f, &ud, ret_val);
        // The multiply feeding `unused` must not appear.
        let mul = f.iter_instrs().find_map(|(_, _, i, _)| match i {
            Instr::Bin {
                dst,
                op: spex_lang::ast::BinOp::Mul,
                ..
            } => Some(*dst),
            _ => None,
        });
        if let Some(mul) = mul {
            assert!(!slice.values.contains(&mul));
        }
    }
}
