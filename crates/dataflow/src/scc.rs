//! Strongly-connected-component condensation of the call graph.
//!
//! The interprocedural summary layer ([`crate::summary`]) evaluates
//! per-function summaries bottom-up: a function's summary may read its
//! callees' summaries, so callees must be finished first. Recursion makes
//! the call graph cyclic; condensing it into SCCs gives an acyclic
//! component DAG that can be processed callees-first, with each cyclic
//! component iterated to a fixpoint internally.
//!
//! Everything here is deterministic: components are emitted by an
//! iterative Tarjan walk rooted at ascending [`FuncId`]s with callee edges
//! in first-appearance order, so the component list — and therefore the
//! summary fold order — is identical across runs and thread counts.

use spex_ir::{Callee, FuncId, Instr, Module};

/// The condensed call graph: components in bottom-up (callees-first)
/// order plus the membership and dependency indexes the summary layer
/// needs for SCC-granular invalidation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Condensation {
    /// Component index of each function (indexed by function id).
    pub component_of: Vec<usize>,
    /// Members of each component, ascending by function id. Components are
    /// ordered callees-first: every component a member calls into (other
    /// than its own) has a smaller index.
    pub components: Vec<Vec<FuncId>>,
    /// Direct callee components of each component (deduped, ascending,
    /// never containing the component itself).
    pub callee_components: Vec<Vec<usize>>,
    /// Whether the component contains a cycle (self-recursion or mutual
    /// recursion) and therefore needs fixpoint iteration.
    pub cyclic: Vec<bool>,
}

impl Condensation {
    /// Builds the condensation over the direct (`Callee::Func`) call edges
    /// of `module`. Indirect calls carry no summary information and are
    /// not edges here.
    pub fn build(module: &Module) -> Condensation {
        let n = module.functions.len();
        let mut callees: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut self_loop = vec![false; n];
        for (fi, func) in module.functions.iter().enumerate() {
            for (_, _, instr, _) in func.iter_instrs() {
                if let Instr::Call {
                    callee: Callee::Func(g),
                    ..
                } = instr
                {
                    let gi = g.index();
                    if gi == fi {
                        self_loop[fi] = true;
                    }
                    if !callees[fi].contains(&gi) {
                        callees[fi].push(gi);
                    }
                }
            }
        }

        // Iterative Tarjan. With edges pointing caller → callee, an SCC is
        // emitted only after every SCC it reaches, i.e. callees-first.
        const UNVISITED: usize = usize::MAX;
        let mut index = vec![UNVISITED; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut component_of = vec![UNVISITED; n];
        let mut components: Vec<Vec<FuncId>> = Vec::new();

        for root in 0..n {
            if index[root] != UNVISITED {
                continue;
            }
            let mut call: Vec<(usize, usize)> = vec![(root, 0)];
            index[root] = next_index;
            low[root] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root] = true;
            while let Some(&mut (v, ref mut ei)) = call.last_mut() {
                if *ei < callees[v].len() {
                    let w = callees[v][*ei];
                    *ei += 1;
                    if index[w] == UNVISITED {
                        index[w] = next_index;
                        low[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        call.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    call.pop();
                    if let Some(&(p, _)) = call.last() {
                        low[p] = low[p].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            component_of[w] = components.len();
                            comp.push(FuncId(w as u32));
                            if w == v {
                                break;
                            }
                        }
                        comp.sort_by_key(|f| f.index());
                        components.push(comp);
                    }
                }
            }
        }

        let mut callee_components: Vec<Vec<usize>> = vec![Vec::new(); components.len()];
        let mut cyclic = vec![false; components.len()];
        for (c, members) in components.iter().enumerate() {
            cyclic[c] = members.len() > 1 || members.iter().any(|f| self_loop[f.index()]);
            for f in members {
                for &g in &callees[f.index()] {
                    let cg = component_of[g];
                    if cg != c && !callee_components[c].contains(&cg) {
                        callee_components[c].push(cg);
                    }
                }
            }
            callee_components[c].sort_unstable();
        }

        Condensation {
            component_of,
            components,
            callee_components,
            cyclic,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn condense(src: &str) -> (spex_ir::Module, Condensation) {
        let p = spex_lang::parse_program(src).unwrap();
        let m = spex_ir::lower_program(&p).unwrap();
        let c = Condensation::build(&m);
        (m, c)
    }

    #[test]
    fn chain_is_bottom_up() {
        let (m, c) = condense(
            "int c(int x) { return x + 1; }
             int b(int x) { return c(x); }
             int a(int x) { return b(x); }",
        );
        let a = m.function_by_name("a").unwrap();
        let b = m.function_by_name("b").unwrap();
        let cc = m.function_by_name("c").unwrap();
        assert_eq!(c.components.len(), 3);
        // Callees come first.
        assert!(c.component_of[cc.index()] < c.component_of[b.index()]);
        assert!(c.component_of[b.index()] < c.component_of[a.index()]);
        assert!(c.cyclic.iter().all(|&x| !x));
    }

    #[test]
    fn mutual_recursion_is_one_cyclic_component() {
        let (m, c) = condense(
            "int even(int x) { if (x == 0) { return 1; } return odd(x - 1); }
             int odd(int x) { if (x == 0) { return 0; } return even(x - 1); }
             int caller(int x) { return even(x); }",
        );
        let even = m.function_by_name("even").unwrap();
        let odd = m.function_by_name("odd").unwrap();
        let caller = m.function_by_name("caller").unwrap();
        assert_eq!(c.component_of[even.index()], c.component_of[odd.index()]);
        assert!(c.cyclic[c.component_of[even.index()]]);
        assert!(c.component_of[even.index()] < c.component_of[caller.index()]);
    }

    #[test]
    fn self_recursion_is_cyclic() {
        let (m, c) = condense("int f(int x) { if (x <= 0) { return 0; } return f(x - 1); }");
        let f = m.function_by_name("f").unwrap();
        assert!(c.cyclic[c.component_of[f.index()]]);
        assert_eq!(c.components[c.component_of[f.index()]], vec![f]);
    }

    #[test]
    fn callee_components_are_deduped_and_sorted() {
        let (m, c) = condense(
            "int h1(int x) { return x; }
             int h2(int x) { return x; }
             int top(int x) { return h1(x) + h2(x) + h1(x); }",
        );
        let top = m.function_by_name("top").unwrap();
        let deps = &c.callee_components[c.component_of[top.index()]];
        assert_eq!(deps.len(), 2);
        assert!(deps.windows(2).all(|w| w[0] < w[1]));
    }
}
