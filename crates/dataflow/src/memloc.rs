//! Abstract memory locations for field-sensitive taint.

use spex_ir::{FuncId, GlobalId, Place, PlaceBase, PlaceElem, SlotId};

/// One abstract access-path element.
///
/// Dynamic indices are widened to [`AccessElem::AnyIndex`]; fields stay
/// precise — that is the field-sensitivity the paper requires for
/// parameters "stored in composite data types" (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessElem {
    /// Struct field by index.
    Field(u32),
    /// Array element at a known constant index.
    Index(u32),
    /// Array element at an unknown index.
    AnyIndex,
}

impl AccessElem {
    /// Whether two elements can refer to the same memory.
    pub fn may_match(&self, other: &AccessElem) -> bool {
        match (self, other) {
            (AccessElem::Field(a), AccessElem::Field(b)) => a == b,
            (AccessElem::Index(a), AccessElem::Index(b)) => a == b,
            (AccessElem::AnyIndex, AccessElem::Index(_))
            | (AccessElem::Index(_), AccessElem::AnyIndex)
            | (AccessElem::AnyIndex, AccessElem::AnyIndex) => true,
            _ => false,
        }
    }
}

/// An abstract memory location: a named base plus an access path.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MemLoc {
    /// A global (possibly a field/element of it).
    Global(GlobalId, Vec<AccessElem>),
    /// An unpromoted stack slot of a specific function.
    Slot(FuncId, SlotId, Vec<AccessElem>),
}

impl MemLoc {
    /// Converts an IR place to an abstract location. Returns `None` for
    /// places based on pointer values (no alias analysis).
    pub fn from_place(func: FuncId, place: &Place) -> Option<MemLoc> {
        let path = abstract_path(&place.elems)?;
        match place.base {
            PlaceBase::Global(g) => Some(MemLoc::Global(g, path)),
            PlaceBase::Slot(s) => Some(MemLoc::Slot(func, s, path)),
            PlaceBase::ValuePtr(_) => None,
        }
    }

    /// Whether two locations can overlap (same base, compatible paths;
    /// prefix relations are treated as overlapping).
    pub fn may_alias(&self, other: &MemLoc) -> bool {
        let (pa, pb) = match (self, other) {
            (MemLoc::Global(a, pa), MemLoc::Global(b, pb)) if a == b => (pa, pb),
            (MemLoc::Slot(fa, sa, pa), MemLoc::Slot(fb, sb, pb)) if fa == fb && sa == sb => {
                (pa, pb)
            }
            _ => return false,
        };
        pa.iter().zip(pb.iter()).all(|(a, b)| a.may_match(b))
    }
}

fn abstract_path(elems: &[PlaceElem]) -> Option<Vec<AccessElem>> {
    let mut out = Vec::with_capacity(elems.len());
    for e in elems {
        out.push(match e {
            PlaceElem::Field(i) => AccessElem::Field(*i),
            PlaceElem::IndexConst(i) => AccessElem::Index(*i),
            PlaceElem::IndexValue(_) => AccessElem::AnyIndex,
            // An embedded deref makes the target unknown.
            PlaceElem::Deref => return None,
        });
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_match_is_exact() {
        assert!(AccessElem::Field(1).may_match(&AccessElem::Field(1)));
        assert!(!AccessElem::Field(1).may_match(&AccessElem::Field(2)));
        assert!(!AccessElem::Field(1).may_match(&AccessElem::AnyIndex));
    }

    #[test]
    fn any_index_widens() {
        assert!(AccessElem::AnyIndex.may_match(&AccessElem::Index(7)));
        assert!(AccessElem::Index(7).may_match(&AccessElem::AnyIndex));
    }

    #[test]
    fn different_globals_never_alias() {
        let a = MemLoc::Global(GlobalId(0), vec![]);
        let b = MemLoc::Global(GlobalId(1), vec![]);
        assert!(!a.may_alias(&b));
    }

    #[test]
    fn field_sensitivity_distinguishes_siblings() {
        let a = MemLoc::Global(GlobalId(0), vec![AccessElem::Field(0)]);
        let b = MemLoc::Global(GlobalId(0), vec![AccessElem::Field(1)]);
        let c = MemLoc::Global(GlobalId(0), vec![AccessElem::Field(0)]);
        assert!(!a.may_alias(&b));
        assert!(a.may_alias(&c));
    }

    #[test]
    fn prefix_paths_overlap() {
        let whole = MemLoc::Global(GlobalId(0), vec![]);
        let field = MemLoc::Global(GlobalId(0), vec![AccessElem::Field(2)]);
        assert!(whole.may_alias(&field));
        assert!(field.may_alias(&whole));
    }

    #[test]
    fn slots_are_function_scoped() {
        let a = MemLoc::Slot(FuncId(0), SlotId(0), vec![]);
        let b = MemLoc::Slot(FuncId(1), SlotId(0), vec![]);
        assert!(!a.may_alias(&b));
    }

    #[test]
    fn deref_paths_are_rejected() {
        use spex_ir::{Place, PlaceBase, PlaceElem, ValueId};
        let place = Place {
            base: PlaceBase::Global(GlobalId(0)),
            elems: vec![PlaceElem::Deref],
        };
        assert_eq!(MemLoc::from_place(FuncId(0), &place), None);
        let vp = Place::deref_value(ValueId(0));
        assert_eq!(MemLoc::from_place(FuncId(0), &vp), None);
    }
}
