//! Point-in-time views of a [`Recorder`](crate::Recorder): the span tree,
//! counters, gauges and histograms, with text and JSON renderers.

use crate::{json, BUCKET_BOUNDS_NS};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregated timings for one span path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// How many times the span closed.
    pub count: u64,
    /// Total time inside the span (including children), nanoseconds.
    pub total_ns: u64,
    /// Longest single occurrence, nanoseconds.
    pub max_ns: u64,
}

/// One histogram's frozen state; bucket `i` counts observations `<=`
/// [`BUCKET_BOUNDS_NS`]`[i]`, with a final overflow bucket.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
}

/// Everything a [`Recorder`](crate::Recorder) knows, frozen. Span keys are
/// `/`-joined paths (`workspace.reanalyze/infer.param{name=threads}`), so
/// iterating the `BTreeMap` walks the tree depth-first.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    pub spans: BTreeMap<String, SpanStat>,
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl TelemetrySnapshot {
    /// True when nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
    }

    /// The stats for an exact span path, if it was recorded.
    pub fn span(&self, path: &str) -> Option<&SpanStat> {
        self.spans.get(path)
    }

    /// Total closings across every span whose path ends with component
    /// `name` (label suffix `{...}` ignored) — for "did `infer.range` run
    /// anywhere in the tree" queries.
    pub fn span_count(&self, name: &str) -> u64 {
        self.spans
            .iter()
            .filter(|(path, _)| {
                let last = path.rsplit('/').next().unwrap_or(path);
                let last = last.split('{').next().unwrap_or(last);
                last == name
            })
            .map(|(_, s)| s.count)
            .sum()
    }

    /// A counter's value (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The deterministic projection of the snapshot: every span path with
    /// its count, every counter with its value, every histogram with its
    /// observation count — and **no** timings, gauges or bucket contents,
    /// which are scheduling- and clock-dependent. Two runs of the same
    /// workload must produce equal signatures.
    pub fn counts_signature(&self) -> String {
        let mut out = String::new();
        for (path, stat) in &self.spans {
            let _ = writeln!(out, "span {path} x{}", stat.count);
        }
        for (name, value) in &self.counters {
            let _ = writeln!(out, "counter {name} = {value}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "histogram {name} n={}", h.count);
        }
        out
    }

    /// The human rendering: an indented span tree with counts and
    /// timings, then counters, gauges and histograms.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str("spans:\n");
            for (path, stat) in &self.spans {
                let depth = path.matches('/').count();
                let name = path.rsplit('/').next().unwrap_or(path);
                let _ = writeln!(
                    out,
                    "  {:indent$}{name}  x{}  total {}  max {}",
                    "",
                    stat.count,
                    fmt_ns(stat.total_ns),
                    fmt_ns(stat.max_ns),
                    indent = depth * 2,
                );
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name} = {value}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, value) in &self.gauges {
                let _ = writeln!(out, "  {name} = {value}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &self.histograms {
                let mean = h.sum.checked_div(h.count).unwrap_or(0);
                let _ = writeln!(
                    out,
                    "  {name}  n={}  mean {}  [{}]",
                    h.count,
                    fmt_ns(mean),
                    h.buckets
                        .iter()
                        .map(|b| b.to_string())
                        .collect::<Vec<_>>()
                        .join(" "),
                );
            }
        }
        if out.is_empty() {
            out.push_str("(no telemetry recorded)\n");
        }
        out
    }

    /// The machine rendering: one JSON object with `spans`, `counters`,
    /// `gauges` and `histograms` keys; round-trips through
    /// [`json::Json::parse`].
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"spans\":{");
        for (i, (path, stat)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"total_ns\":{},\"max_ns\":{}}}",
                json::quote(path),
                stat.count,
                stat.total_ns,
                stat.max_ns,
            );
        }
        out.push_str("},\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json::quote(name), value);
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json::quote(name), value);
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"sum\":{},\"bounds_ns\":[{}],\"buckets\":[{}]}}",
                json::quote(name),
                h.count,
                h.sum,
                BUCKET_BOUNDS_NS
                    .iter()
                    .map(|b| b.to_string())
                    .collect::<Vec<_>>()
                    .join(","),
                h.buckets
                    .iter()
                    .map(|b| b.to_string())
                    .collect::<Vec<_>>()
                    .join(","),
            );
        }
        out.push_str("}}");
        out
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use crate::{counter, install, json, observe, span, Recorder};
    use std::sync::Arc;

    fn sample() -> crate::TelemetrySnapshot {
        let rec = Arc::new(Recorder::new());
        {
            let _g = install(&rec);
            let _a = span("check.batch");
            {
                let _b = span!("check.file", file = "a.conf");
            }
            counter("check.diagnostics", 3);
            observe("check.file_ns", 42_000);
        }
        rec.snapshot()
    }

    #[test]
    fn text_rendering_indents_by_depth() {
        let text = sample().render_text();
        assert!(text.contains("spans:"), "{text}");
        assert!(text.contains("  check.batch  x1"), "{text}");
        assert!(text.contains("    check.file{file=a.conf}  x1"), "{text}");
        assert!(text.contains("check.diagnostics = 3"), "{text}");
        assert!(text.contains("check.file_ns  n=1"), "{text}");
    }

    #[test]
    fn json_rendering_parses_back() {
        let rendered = sample().render_json();
        let doc = json::Json::parse(&rendered).expect("snapshot JSON parses");
        let spans = doc.get("spans").expect("spans key");
        assert!(spans
            .get("check.batch/check.file{file=a.conf}")
            .and_then(|s| s.get("count"))
            .and_then(|c| c.as_f64())
            .is_some_and(|c| c == 1.0));
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("check.diagnostics"))
                .and_then(|c| c.as_f64()),
            Some(3.0)
        );
    }

    #[test]
    fn counts_signature_excludes_timings() {
        let a = sample().counts_signature();
        let b = sample().counts_signature();
        assert_eq!(a, b, "identical workloads must sign identically");
        assert!(!a.contains("total"), "no timings in the signature");
    }

    #[test]
    fn span_count_matches_suffix_ignoring_labels() {
        let snap = sample();
        assert_eq!(snap.span_count("check.file"), 1);
        assert_eq!(snap.span_count("check.batch"), 1);
        assert_eq!(snap.span_count("absent"), 0);
    }

    #[test]
    fn empty_snapshot_renders_placeholder() {
        let snap = crate::TelemetrySnapshot::default();
        assert!(snap.is_empty());
        assert_eq!(snap.render_text(), "(no telemetry recorded)\n");
        assert!(json::Json::parse(&snap.render_json()).is_ok());
    }
}
