//! `spex-obs` — structured telemetry for the SPEX stack (std only).
//!
//! The paper's pitch is that *systems* should explain failures instead of
//! leaving users to guess; this crate applies that standard to the checker
//! itself. It provides:
//!
//! * a lightweight **span** API ([`span()`] / [`span!`]) — guard objects
//!   over monotonic clocks that aggregate into a tree of timings keyed by
//!   `/`-joined paths (`workspace.reanalyze/infer.param{name=threads}/
//!   infer.range`);
//! * a **metrics registry** — counters, gauges and histograms with fixed
//!   bucket boundaries ([`BUCKET_BOUNDS_NS`]);
//! * a thread-safe in-memory [`Recorder`] that owns both, and a
//!   [`TelemetrySnapshot`] with human-text and JSON renderers.
//!
//! # Enablement model: zero-cost when off
//!
//! Nothing here is process-global state that silently accumulates: a
//! recorder only sees events from threads that explicitly [`install`]ed
//! it. When no recorder is installed on the current thread, every entry
//! point degrades to a branch on one relaxed atomic load — no clock read,
//! no allocation, no lock. The [`probe`] lineage counters let tests assert
//! exactly that (the same style as `Module::clone_count()` in `spex-ir`).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//!
//! let recorder = Arc::new(spex_obs::Recorder::new());
//! {
//!     let _session = spex_obs::install(&recorder);
//!     let _outer = spex_obs::span("load");
//!     {
//!         let _inner = spex_obs::span!("parse", file = "a.conf");
//!         spex_obs::counter("files.parsed", 1);
//!     }
//! }
//! let snap = recorder.snapshot();
//! assert_eq!(snap.span("load").unwrap().count, 1);
//! assert_eq!(snap.span("load/parse{file=a.conf}").unwrap().count, 1);
//! assert_eq!(snap.counter("files.parsed"), 1);
//! ```

pub mod json;
mod snapshot;

pub use snapshot::{HistogramSnapshot, SpanStat, TelemetrySnapshot};

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Fixed histogram bucket boundaries, in nanoseconds: 1µs, 10µs, 100µs,
/// 1ms, 10ms, 100ms, 1s, 10s (plus an implicit overflow bucket). Fixed
/// boundaries keep snapshots mergeable and comparisons across runs
/// meaningful.
pub const BUCKET_BOUNDS_NS: [u64; 8] = [
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

/// How many threads currently have a recorder installed (process-wide
/// fast-path switch: zero means every telemetry call is a no-op).
static ACTIVE_INSTALLS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static CURRENT: RefCell<Option<ThreadCtx>> = const { RefCell::new(None) };
}

/// The per-thread telemetry context: where events go, and the span path
/// the thread is currently inside.
struct ThreadCtx {
    recorder: Arc<Recorder>,
    path: Vec<String>,
}

/// Lineage counters for the no-op guarantee (the `clone_count()` pattern):
/// thread-local tallies of work the telemetry layer actually did, so tests
/// can assert the disabled path recorded nothing and allocated nothing.
pub mod probe {
    use std::cell::Cell;

    thread_local! {
        static SPANS_RECORDED: Cell<u64> = const { Cell::new(0) };
        static LABELS_ALLOCATED: Cell<u64> = const { Cell::new(0) };
    }

    /// Spans this thread has recorded into any recorder, ever.
    pub fn thread_spans_recorded() -> u64 {
        SPANS_RECORDED.with(|c| c.get())
    }

    /// Span-label strings this thread has formatted (each one is a heap
    /// allocation; the disabled path must never format).
    pub fn thread_labels_allocated() -> u64 {
        LABELS_ALLOCATED.with(|c| c.get())
    }

    pub(crate) fn note_span_recorded() {
        SPANS_RECORDED.with(|c| c.set(c.get() + 1));
    }

    pub(crate) fn note_label_allocated() {
        LABELS_ALLOCATED.with(|c| c.set(c.get() + 1));
    }
}

/// Whether telemetry is live on the *current thread* — i.e. a recorder is
/// [`install`]ed here. The first check is one relaxed atomic load, so
/// calling this in a hot loop with telemetry off costs nothing measurable.
#[inline]
pub fn enabled() -> bool {
    ACTIVE_INSTALLS.load(Ordering::Relaxed) > 0
        && CURRENT.try_with(|c| c.borrow().is_some()).unwrap_or(false)
}

/// Installs `recorder` as the current thread's telemetry sink until the
/// returned guard drops (restoring whatever was installed before, so
/// installs nest). Spans opened under the install aggregate into the
/// recorder; worker threads must install separately — thread-locals do
/// not cross `spawn`.
#[must_use = "telemetry stops when the install guard drops"]
pub fn install(recorder: &Arc<Recorder>) -> InstallGuard {
    let prev = CURRENT
        .try_with(|c| {
            c.borrow_mut().replace(ThreadCtx {
                recorder: Arc::clone(recorder),
                path: Vec::new(),
            })
        })
        .unwrap_or(None);
    ACTIVE_INSTALLS.fetch_add(1, Ordering::SeqCst);
    InstallGuard { prev }
}

/// The recorder installed on the current thread, if any — for handing the
/// sink across a worker-pool boundary (thread-locals do not cross `spawn`,
/// so a pool must capture the caller's recorder and [`install`] it on each
/// worker).
pub fn current_recorder() -> Option<Arc<Recorder>> {
    CURRENT
        .try_with(|c| c.borrow().as_ref().map(|ctx| Arc::clone(&ctx.recorder)))
        .unwrap_or(None)
}

/// Reverts an [`install`] on drop.
pub struct InstallGuard {
    prev: Option<ThreadCtx>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        let _ = CURRENT.try_with(|c| {
            *c.borrow_mut() = self.prev.take();
        });
        ACTIVE_INSTALLS.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Opens a span named `name` under the current thread's span path; the
/// returned guard records the elapsed time into the recorder when it
/// drops. A no-op guard (no clock read, no allocation) when telemetry is
/// disabled. Use the [`span!`] macro to attach `key = value` labels
/// without paying for formatting when disabled.
#[must_use = "a span measures until its guard drops"]
pub fn span(name: &str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { start: None };
    }
    span_owned(name.to_string())
}

/// Like [`span()`], from an already-owned label (the `span!` macro's entry
/// point; callers must have checked [`enabled`]).
#[must_use = "a span measures until its guard drops"]
pub fn span_owned(name: String) -> SpanGuard {
    let pushed = CURRENT
        .try_with(|c| {
            if let Some(ctx) = c.borrow_mut().as_mut() {
                ctx.path.push(name);
                true
            } else {
                false
            }
        })
        .unwrap_or(false);
    SpanGuard {
        start: pushed.then(Instant::now),
    }
}

/// A measuring (or no-op) span; see [`span()`].
pub struct SpanGuard {
    start: Option<Instant>,
}

impl SpanGuard {
    /// An inert guard (the disabled arm of [`span!`]).
    pub fn noop() -> SpanGuard {
        SpanGuard { start: None }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed = start.elapsed();
        let _ = CURRENT.try_with(|c| {
            if let Some(ctx) = c.borrow_mut().as_mut() {
                let path = ctx.path.join("/");
                ctx.recorder.record_span(&path, elapsed);
                ctx.path.pop();
                probe::note_span_recorded();
            }
        });
    }
}

/// Formats `name{k=v,...}` for a labelled span (enabled path only; counts
/// against [`probe::thread_labels_allocated`]).
#[doc(hidden)]
pub fn format_label(name: &str, fields: &[(&str, &dyn std::fmt::Display)]) -> String {
    probe::note_label_allocated();
    let mut out = String::with_capacity(name.len() + 16);
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}={v}");
    }
    out.push('}');
    out
}

/// Opens a span, optionally labelled: `span!("infer.param", name = p)`
/// yields the path component `infer.param{name=threads}`. Labels are
/// formatted only when telemetry is enabled — the disabled arm is a
/// branch and an inert guard.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        if $crate::enabled() {
            $crate::span_owned($crate::format_label(
                $name,
                &[$((stringify!($key), &$value as &dyn ::std::fmt::Display)),+],
            ))
        } else {
            $crate::SpanGuard::noop()
        }
    };
}

fn with_recorder(f: impl FnOnce(&Recorder)) {
    let _ = CURRENT.try_with(|c| {
        if let Some(ctx) = c.borrow().as_ref() {
            f(&ctx.recorder);
        }
    });
}

/// Adds `delta` to the counter `name` (no-op when disabled). Counters are
/// monotonic and deterministic for a deterministic workload — snapshot
/// comparisons rely on that; scheduling-dependent measurements belong in
/// gauges or histograms instead.
#[inline]
pub fn counter(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    with_recorder(|r| r.add_counter(name, delta));
}

/// Sets the gauge `name` to `value` (last write wins; no-op when
/// disabled). Gauges hold point-in-time observations — worker
/// utilization, queue sizes — that may legitimately differ between
/// otherwise identical runs.
#[inline]
pub fn gauge(name: &str, value: i64) {
    if !enabled() {
        return;
    }
    with_recorder(|r| r.set_gauge(name, value));
}

/// Records one observation into the histogram `name` (no-op when
/// disabled). Buckets follow [`BUCKET_BOUNDS_NS`]; values are
/// conventionally nanoseconds but any u64 works (queue depths, sizes).
#[inline]
pub fn observe(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    with_recorder(|r| r.observe(name, value));
}

/// Sugar: records a [`Duration`] into histogram `name` in nanoseconds.
#[inline]
pub fn observe_duration(name: &str, d: Duration) {
    observe(name, d.as_nanos().min(u64::MAX as u128) as u64);
}

/// `Instant::now()` only when telemetry is enabled — pair with
/// [`observe_elapsed`] to time a region without guard objects.
#[inline]
pub fn clock() -> Option<Instant> {
    enabled().then(Instant::now)
}

/// Completes a [`clock`] measurement into histogram `name`.
#[inline]
pub fn observe_elapsed(name: &str, start: Option<Instant>) {
    if let Some(start) = start {
        observe_duration(name, start.elapsed());
    }
}

/// One histogram: fixed buckets ([`BUCKET_BOUNDS_NS`]) plus an overflow
/// bucket, with count and sum.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct Histogram {
    pub buckets: [u64; BUCKET_BOUNDS_NS.len() + 1],
    pub count: u64,
    pub sum: u64,
}

impl Histogram {
    fn record(&mut self, value: u64) {
        let idx = BUCKET_BOUNDS_NS
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(BUCKET_BOUNDS_NS.len());
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }
}

#[derive(Default)]
struct RecorderState {
    spans: BTreeMap<String, SpanStat>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

/// The thread-safe in-memory aggregation sink (see the module docs).
/// Shared as `Arc<Recorder>`; every mutation takes one mutex — cheap at
/// span granularity, and contention-free in the common one-installed-
/// thread case.
#[derive(Default)]
pub struct Recorder {
    state: Mutex<RecorderState>,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    fn record_span(&self, path: &str, elapsed: Duration) {
        let ns = elapsed.as_nanos().min(u64::MAX as u128) as u64;
        let mut state = self.state.lock().unwrap();
        let stat = match state.spans.get_mut(path) {
            Some(stat) => stat,
            None => state.spans.entry(path.to_string()).or_default(),
        };
        stat.count += 1;
        stat.total_ns = stat.total_ns.saturating_add(ns);
        stat.max_ns = stat.max_ns.max(ns);
    }

    fn add_counter(&self, name: &str, delta: u64) {
        let mut state = self.state.lock().unwrap();
        match state.counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                state.counters.insert(name.to_string(), delta);
            }
        }
    }

    fn set_gauge(&self, name: &str, value: i64) {
        let mut state = self.state.lock().unwrap();
        state.gauges.insert(name.to_string(), value);
    }

    fn observe(&self, name: &str, value: u64) {
        let mut state = self.state.lock().unwrap();
        match state.histograms.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                let mut h = Histogram::default();
                h.record(value);
                state.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// A point-in-time copy of everything recorded so far.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let state = self.state.lock().unwrap();
        TelemetrySnapshot {
            spans: state.spans.clone(),
            counters: state.counters.clone(),
            gauges: state.gauges.clone(),
            histograms: state
                .histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        HistogramSnapshot {
                            buckets: h.buckets.to_vec(),
                            count: h.count,
                            sum: h.sum,
                        },
                    )
                })
                .collect(),
        }
    }

    /// Forgets everything recorded so far.
    pub fn reset(&self) {
        *self.state.lock().unwrap() = RecorderState::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_paths_cost_nothing_and_record_nothing() {
        let spans_before = probe::thread_spans_recorded();
        let labels_before = probe::thread_labels_allocated();
        {
            let _s = span("never");
            let _l = span!("never", key = 42);
            counter("c", 1);
            gauge("g", 1);
            observe("h", 1);
            assert!(clock().is_none());
        }
        assert_eq!(probe::thread_spans_recorded(), spans_before);
        assert_eq!(probe::thread_labels_allocated(), labels_before);
    }

    #[test]
    fn spans_nest_into_a_path_tree() {
        let rec = Arc::new(Recorder::new());
        {
            let _g = install(&rec);
            let _a = span("a");
            {
                let _b = span("b");
                let _c = span!("c", n = 1);
            }
        }
        let snap = rec.snapshot();
        let paths: Vec<&str> = snap.spans.keys().map(|s| s.as_str()).collect();
        assert_eq!(paths, vec!["a", "a/b", "a/b/c{n=1}"]);
        assert!(snap.span("a").unwrap().total_ns >= snap.span("a/b").unwrap().total_ns);
    }

    #[test]
    fn installs_nest_and_restore() {
        let outer = Arc::new(Recorder::new());
        let inner = Arc::new(Recorder::new());
        let _g1 = install(&outer);
        {
            let _g2 = install(&inner);
            counter("x", 1);
        }
        counter("x", 2);
        assert_eq!(inner.snapshot().counter("x"), 1);
        assert_eq!(outer.snapshot().counter("x"), 2);
    }

    #[test]
    fn metrics_aggregate() {
        let rec = Arc::new(Recorder::new());
        {
            let _g = install(&rec);
            counter("jobs", 3);
            counter("jobs", 2);
            gauge("depth", 7);
            gauge("depth", 4);
            observe("lat", 500);
            observe("lat", 5_000_000_000_000);
        }
        let snap = rec.snapshot();
        assert_eq!(snap.counter("jobs"), 5);
        assert_eq!(snap.gauges.get("depth"), Some(&4));
        let h = snap.histograms.get("lat").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.buckets[0], 1, "500ns lands in the first bucket");
        assert_eq!(
            h.buckets[BUCKET_BOUNDS_NS.len()],
            1,
            "83 minutes lands in the overflow bucket"
        );
    }

    #[test]
    fn worker_threads_record_only_when_they_install() {
        let rec = Arc::new(Recorder::new());
        let rec2 = Arc::clone(&rec);
        std::thread::scope(|s| {
            s.spawn(move || {
                let _g = install(&rec2);
                counter("from.worker", 1);
            });
            s.spawn(|| {
                counter("from.worker", 100); // no install: dropped
            });
        });
        assert_eq!(rec.snapshot().counter("from.worker"), 1);
    }
}
