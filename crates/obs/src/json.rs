//! A minimal JSON reader/writer (std only; the build environment has no
//! registry access for serde).
//!
//! The writer side is just [`quote`]; renderers format objects by hand.
//! The reader side is a small recursive-descent parser over the full JSON
//! grammar, used by the in-tree structural validation of the machine
//! renderers' output — the JSON we emit must parse back with the fields
//! the stability contract promises, and CI asserts that without any
//! network dependency.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (JSON does not distinguish integer widths).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys are kept).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// Member lookup on an object (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Renders `s` as a quoted JSON string literal (quotes included).
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Validates a `BENCH_*.json` perf-trajectory file: JSON Lines, one
/// sample per line, each an object with string `rev`, `stamp`, `bench`,
/// `metric`, `unit` members and a numeric `value`. Returns the number of
/// samples, or the first offending line's error. Blank lines are allowed
/// (the file is append-only across PRs).
pub fn validate_trajectory(text: &str) -> Result<usize, String> {
    let mut samples = 0;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        for key in ["rev", "stamp", "bench", "metric", "unit"] {
            if doc.get(key).and_then(Json::as_str).is_none() {
                return Err(format!("line {}: missing string member {key:?}", i + 1));
            }
        }
        if doc.get("value").and_then(Json::as_f64).is_none() {
            return Err(format!("line {}: missing numeric member \"value\"", i + 1));
        }
        samples += 1;
    }
    Ok(samples)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while let Some(c) = bytes.get(*pos) {
        if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
            *pos += 1;
        } else {
            break;
        }
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|t| t.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&c) = bytes.get(*pos) else {
            return Err("unterminated string".to_string());
        };
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".to_string());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        *pos += 4;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape \\{}", other as char)),
                }
            }
            // Multi-byte UTF-8: copy the whole scalar.
            c if c >= 0x80 => {
                let start = *pos - 1;
                let len = match c {
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let chunk = bytes
                    .get(start..start + len)
                    .and_then(|b| std::str::from_utf8(b).ok())
                    .ok_or_else(|| "invalid UTF-8 in string".to_string())?;
                out.push_str(chunk);
                *pos = start + len;
            }
            c => out.push(c as char),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '{'
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected string key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_and_objects() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-12.5e1").unwrap(), Json::Num(-125.0));
        assert_eq!(
            Json::parse(r#"[1, "two", null]"#).unwrap(),
            Json::Arr(vec![Json::Num(1.0), Json::Str("two".into()), Json::Null])
        );
        let obj = Json::parse(r#"{"a": {"b": [true]}, "c": 3}"#).unwrap();
        assert_eq!(obj.get("c").and_then(Json::as_f64), Some(3.0));
        assert_eq!(
            obj.get("a").and_then(|a| a.get("b")).unwrap(),
            &Json::Arr(vec![Json::Bool(true)])
        );
    }

    #[test]
    fn quote_round_trips_hostile_strings() {
        for s in [
            "",
            "plain",
            "with \"quotes\" and \\backslash\\",
            "tab\there\nnewline",
            "control\u{1}char",
            "unicode: héllo → 世界",
        ] {
            let quoted = quote(s);
            assert_eq!(
                Json::parse(&quoted).unwrap(),
                Json::Str(s.to_string()),
                "{quoted}"
            );
        }
    }

    #[test]
    fn trajectory_validation_accepts_well_formed_lines() {
        let good = concat!(
            r#"{"rev":"abc1234","stamp":"1700000000","bench":"workspace/reanalyze_warm","metric":"mean_ns","value":290000,"unit":"ns"}"#,
            "\n\n",
            r#"{"rev":"abc1234","stamp":"1700000000","bench":"check/db_save","metric":"best_ns","value":1.5e4,"unit":"ns"}"#,
            "\n",
        );
        assert_eq!(validate_trajectory(good), Ok(2));
        assert_eq!(validate_trajectory(""), Ok(0));
    }

    #[test]
    fn trajectory_validation_rejects_bad_lines() {
        let missing_key = r#"{"rev":"abc","stamp":"1","bench":"b","metric":"m","value":1}"#;
        assert!(validate_trajectory(missing_key)
            .unwrap_err()
            .contains("unit"));
        let string_value =
            r#"{"rev":"a","stamp":"1","bench":"b","metric":"m","value":"1","unit":"ns"}"#;
        assert!(validate_trajectory(string_value)
            .unwrap_err()
            .contains("value"));
        assert!(validate_trajectory("not json")
            .unwrap_err()
            .starts_with("line 1"));
        let bad_second = concat!(
            r#"{"rev":"a","stamp":"1","bench":"b","metric":"m","value":1,"unit":"ns"}"#,
            "\n{",
        );
        assert!(validate_trajectory(bad_second)
            .unwrap_err()
            .starts_with("line 2"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
        assert!(Json::parse("true false").is_err(), "trailing garbage");
        assert!(Json::parse("\"unterminated").is_err());
    }
}
