//! Inference-accuracy evaluation (§4.3, Table 12).
//!
//! The paper manually examined all 3800 inferred constraints against the
//! code; here the subject systems are generated from specs, so the ground
//! truth is known exactly and the comparison is mechanical. Accuracy per
//! category = true positives / all inferred in that category.

use crate::constraint::{Constraint, ConstraintKind};
use std::collections::HashMap;

/// Ground-truth constraint used for matching. Matching is intentionally
/// shape-based: the right parameter and the right payload essence, ignoring
/// provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct TruthConstraint {
    /// Parameter name.
    pub param: String,
    /// Category (one of the five of Table 11).
    pub category: &'static str,
    /// Category-specific matching key, e.g. `"[4,255]"` for a range or the
    /// controller name for a dependency.
    pub key: String,
}

/// Builds the matching key of an inferred constraint.
pub fn constraint_key(c: &Constraint) -> String {
    match &c.kind {
        ConstraintKind::BasicType(b) => b.to_string(),
        ConstraintKind::SemanticType(s) => s.to_string(),
        ConstraintKind::Range(r) => match r.valid_interval() {
            Some((lo, hi)) => format!(
                "[{},{}]",
                lo.map(|v| v.to_string()).unwrap_or_else(|| "-inf".into()),
                hi.map(|v| v.to_string()).unwrap_or_else(|| "+inf".into())
            ),
            None => "range".into(),
        },
        ConstraintKind::EnumRange(e) => {
            let mut vals: Vec<String> =
                e.alternatives.iter().map(|a| a.value.to_string()).collect();
            vals.sort();
            format!("{{{}}}", vals.join(","))
        }
        ConstraintKind::ControlDep(d) => format!("{}{}{}", d.controller, d.op, d.value),
        ConstraintKind::ValueRel(v) => format!("{}{}{}", v.lhs, v.op, v.rhs),
    }
}

/// Per-category accuracy numbers.
#[derive(Debug, Clone, Default)]
pub struct AccuracyReport {
    /// Category → (inferred count, true-positive count).
    pub by_category: HashMap<&'static str, (usize, usize)>,
    /// Ground-truth constraints that were missed entirely (false
    /// negatives), per category.
    pub missed: HashMap<&'static str, usize>,
}

impl AccuracyReport {
    /// Accuracy of one category (`None` when nothing was inferred).
    pub fn accuracy(&self, category: &str) -> Option<f64> {
        self.by_category
            .get(category)
            .filter(|(inferred, _)| *inferred > 0)
            .map(|(inferred, tp)| *tp as f64 / *inferred as f64)
    }

    /// Overall accuracy across categories.
    pub fn overall(&self) -> f64 {
        let (inf, tp) = self
            .by_category
            .values()
            .fold((0usize, 0usize), |(a, b), (i, t)| (a + i, b + t));
        if inf == 0 {
            1.0
        } else {
            tp as f64 / inf as f64
        }
    }
}

/// Compares inferred constraints with the ground truth.
pub fn evaluate_accuracy(inferred: &[Constraint], truth: &[TruthConstraint]) -> AccuracyReport {
    let mut report = AccuracyReport::default();
    let mut matched_truth = vec![false; truth.len()];
    for c in inferred {
        let cat = c.kind.category();
        let key = constraint_key(c);
        let hit = truth.iter().enumerate().find(|(i, t)| {
            !matched_truth[*i] && t.param == c.param && t.category == cat && t.key == key
        });
        let entry = report.by_category.entry(cat).or_insert((0, 0));
        entry.0 += 1;
        if let Some((i, _)) = hit {
            matched_truth[i] = true;
            entry.1 += 1;
        }
    }
    for (i, t) in truth.iter().enumerate() {
        if !matched_truth[i] {
            *report.missed.entry(t.category).or_insert(0) += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{BasicType, Constraint, ConstraintKind};
    use spex_lang::diag::Span;

    fn basic(param: &str, bits: u8) -> Constraint {
        Constraint {
            param: param.into(),
            kind: ConstraintKind::BasicType(BasicType::Int { bits, signed: true }),
            in_function: String::new(),
            span: Span::unknown(),
        }
    }

    fn truth(param: &str, key: &str) -> TruthConstraint {
        TruthConstraint {
            param: param.into(),
            category: "basic-type",
            key: key.into(),
        }
    }

    #[test]
    fn perfect_match_is_full_accuracy() {
        let inferred = vec![basic("a", 32), basic("b", 64)];
        let truths = vec![truth("a", "32-bit INTEGER"), truth("b", "64-bit INTEGER")];
        let r = evaluate_accuracy(&inferred, &truths);
        assert_eq!(r.accuracy("basic-type"), Some(1.0));
        assert_eq!(r.overall(), 1.0);
        assert!(r.missed.is_empty());
    }

    #[test]
    fn wrong_attribution_is_a_false_positive() {
        // The aliasing failure mode: constraint attributed to the wrong
        // parameter.
        let inferred = vec![basic("a", 32), basic("b", 32)];
        let truths = vec![truth("a", "32-bit INTEGER"), truth("c", "32-bit INTEGER")];
        let r = evaluate_accuracy(&inferred, &truths);
        assert_eq!(r.accuracy("basic-type"), Some(0.5));
        assert_eq!(r.missed.get("basic-type"), Some(&1));
    }

    #[test]
    fn missed_constraints_are_counted() {
        let inferred = vec![];
        let truths = vec![truth("a", "32-bit INTEGER")];
        let r = evaluate_accuracy(&inferred, &truths);
        assert_eq!(r.accuracy("basic-type"), None);
        assert_eq!(r.missed.get("basic-type"), Some(&1));
        assert_eq!(r.overall(), 1.0);
    }

    #[test]
    fn duplicate_inferences_count_once_as_tp() {
        let inferred = vec![basic("a", 32), basic("a", 32)];
        let truths = vec![truth("a", "32-bit INTEGER")];
        let r = evaluate_accuracy(&inferred, &truths);
        assert_eq!(r.by_category.get("basic-type"), Some(&(2, 1)));
    }
}
