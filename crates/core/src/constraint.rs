//! The configuration-constraint model (§2.1 of the paper).
//!
//! "A constraint for a configuration parameter specifies its data type,
//! format, value range, dependency and correlation with other parameters,
//! etc., in order to configure the parameter correctly."

use spex_lang::diag::Span;
use spex_lang::types::CType;
use std::fmt;

/// Low-level data representation of a parameter (basic-type constraint,
/// Figure 3a).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BasicType {
    /// Boolean.
    Bool,
    /// Integer with width and signedness (e.g. "32-bit integer").
    Int {
        /// Width in bits.
        bits: u8,
        /// Signedness.
        signed: bool,
    },
    /// Floating-point number.
    Float {
        /// Width in bits.
        bits: u8,
    },
    /// Free-form string.
    Str,
    /// One of a fixed set of words/values (enumerative).
    Enum,
}

impl BasicType {
    /// Derives a basic type from a C type.
    pub fn from_ctype(ty: &CType) -> BasicType {
        match ty {
            CType::Bool => BasicType::Bool,
            CType::Int { bits: 8, .. } => BasicType::Int {
                bits: 8,
                signed: true,
            },
            CType::Int { bits, signed } => BasicType::Int {
                bits: *bits,
                signed: *signed,
            },
            CType::Float { bits } => BasicType::Float { bits: *bits },
            CType::Enum(_) => BasicType::Enum,
            t if t.is_string() => BasicType::Str,
            CType::Ptr(_) | CType::FuncPtr | CType::Array(..) => BasicType::Str,
            CType::Struct(_) | CType::Void => BasicType::Str,
        }
    }
}

impl fmt::Display for BasicType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BasicType::Bool => write!(f, "BOOL"),
            BasicType::Int { bits, signed } => {
                write!(
                    f,
                    "{}-bit {}INTEGER",
                    bits,
                    if *signed { "" } else { "unsigned " }
                )
            }
            BasicType::Float { bits } => write!(f, "{bits}-bit FLOAT"),
            BasicType::Str => write!(f, "STRING"),
            BasicType::Enum => write!(f, "ENUM"),
        }
    }
}

/// Time units (Table 7 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TimeUnit {
    /// Microseconds.
    Micro,
    /// Milliseconds.
    Milli,
    /// Seconds.
    Sec,
    /// Minutes.
    Min,
    /// Hours.
    Hour,
}

impl TimeUnit {
    /// Value of one unit in microseconds.
    pub fn in_micros(&self) -> i64 {
        match self {
            TimeUnit::Micro => 1,
            TimeUnit::Milli => 1_000,
            TimeUnit::Sec => 1_000_000,
            TimeUnit::Min => 60_000_000,
            TimeUnit::Hour => 3_600_000_000,
        }
    }

    /// The unit whose microsecond value equals `micros`, if any.
    pub fn from_micros(micros: i64) -> Option<TimeUnit> {
        [
            TimeUnit::Micro,
            TimeUnit::Milli,
            TimeUnit::Sec,
            TimeUnit::Min,
            TimeUnit::Hour,
        ]
        .into_iter()
        .find(|u| u.in_micros() == micros)
    }
}

impl fmt::Display for TimeUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeUnit::Micro => write!(f, "us"),
            TimeUnit::Milli => write!(f, "ms"),
            TimeUnit::Sec => write!(f, "s"),
            TimeUnit::Min => write!(f, "m"),
            TimeUnit::Hour => write!(f, "h"),
        }
    }
}

/// Size units (Table 7 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SizeUnit {
    /// Bytes.
    B,
    /// Kibibytes.
    KB,
    /// Mebibytes.
    MB,
    /// Gibibytes.
    GB,
}

impl SizeUnit {
    /// Value of one unit in bytes.
    pub fn in_bytes(&self) -> i64 {
        match self {
            SizeUnit::B => 1,
            SizeUnit::KB => 1 << 10,
            SizeUnit::MB => 1 << 20,
            SizeUnit::GB => 1 << 30,
        }
    }

    /// The unit whose byte value equals `bytes`, if any.
    pub fn from_bytes(bytes: i64) -> Option<SizeUnit> {
        [SizeUnit::B, SizeUnit::KB, SizeUnit::MB, SizeUnit::GB]
            .into_iter()
            .find(|u| u.in_bytes() == bytes)
    }
}

impl fmt::Display for SizeUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SizeUnit::B => write!(f, "B"),
            SizeUnit::KB => write!(f, "KB"),
            SizeUnit::MB => write!(f, "MB"),
            SizeUnit::GB => write!(f, "GB"),
        }
    }
}

/// High-level semantic types recognised from known APIs (§2.2.2,
/// Figures 3b/3c).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SemType {
    /// Path that must name an existing regular file.
    FilePath,
    /// Path that must name a directory.
    DirPath,
    /// TCP/UDP port number.
    Port,
    /// Dotted-quad IP address.
    IpAddr,
    /// Resolvable host name.
    Hostname,
    /// Existing user name.
    UserName,
    /// Existing group name.
    GroupName,
    /// Time duration in the given unit.
    Time(TimeUnit),
    /// Memory/disk size in the given unit.
    Size(SizeUnit),
    /// Octal permission mask.
    Permission,
}

impl fmt::Display for SemType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemType::FilePath => write!(f, "FILE"),
            SemType::DirPath => write!(f, "DIR"),
            SemType::Port => write!(f, "PORT"),
            SemType::IpAddr => write!(f, "IPADDR"),
            SemType::Hostname => write!(f, "HOST"),
            SemType::UserName => write!(f, "USER"),
            SemType::GroupName => write!(f, "GROUP"),
            SemType::Time(u) => write!(f, "TIME({u})"),
            SemType::Size(u) => write!(f, "SIZE({u})"),
            SemType::Permission => write!(f, "PERM"),
        }
    }
}

/// Comparison operator in constraints (the paper's ⋄).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// The operator with sides swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(&self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Ge => CmpOp::Le,
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
        }
    }

    /// The negated operator (`!(a < b)` ⇔ `a >= b`).
    pub fn negated(&self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Ge => CmpOp::Lt,
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
        }
    }

    /// Evaluates `a ⋄ b`.
    pub fn eval(&self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Gt => a > b,
            CmpOp::Le => a <= b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }

    /// Converts an AST comparison operator.
    pub fn from_binop(op: spex_lang::ast::BinOp) -> Option<CmpOp> {
        use spex_lang::ast::BinOp as B;
        Some(match op {
            B::Lt => CmpOp::Lt,
            B::Gt => CmpOp::Gt,
            B::Le => CmpOp::Le,
            B::Ge => CmpOp::Ge,
            B::Eq => CmpOp::Eq,
            B::Ne => CmpOp::Ne,
            _ => return None,
        })
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Gt => ">",
            CmpOp::Le => "<=",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        };
        write!(f, "{s}")
    }
}

/// One contiguous numeric subrange with its validity classification
/// (§2.2.3: "SPEX further decides whether the range is valid or not by
/// analyzing the program behavior within the corresponding branch blocks").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeSegment {
    /// Inclusive lower bound (`None` = −∞).
    pub lo: Option<i64>,
    /// Inclusive upper bound (`None` = +∞).
    pub hi: Option<i64>,
    /// Whether values in this segment are valid settings.
    pub valid: bool,
}

impl RangeSegment {
    /// Whether `v` falls inside the segment.
    pub fn contains(&self, v: i64) -> bool {
        self.lo.map(|lo| v >= lo).unwrap_or(true) && self.hi.map(|hi| v <= hi).unwrap_or(true)
    }

    /// A representative value inside the segment, preferring small
    /// magnitudes.
    pub fn sample(&self) -> i64 {
        match (self.lo, self.hi) {
            (Some(lo), Some(hi)) => lo + (hi - lo) / 2,
            (Some(lo), None) => lo.saturating_add(1),
            (None, Some(hi)) => hi.saturating_sub(1),
            (None, None) => 0,
        }
    }
}

/// A numeric data-range constraint (Figure 3d).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NumericRange {
    /// Distinct comparison thresholds found on the data-flow path, sorted.
    pub cutpoints: Vec<i64>,
    /// Partition of the number line with validity classification, in
    /// ascending order.
    pub segments: Vec<RangeSegment>,
}

impl NumericRange {
    /// The tightest contiguous valid interval, if any segment is valid.
    pub fn valid_interval(&self) -> Option<(Option<i64>, Option<i64>)> {
        let valid: Vec<&RangeSegment> = self.segments.iter().filter(|s| s.valid).collect();
        match (valid.first(), valid.last()) {
            (Some(a), Some(b)) => Some((a.lo, b.hi)),
            _ => None,
        }
    }

    /// Whether `v` is classified valid.
    pub fn is_valid(&self, v: i64) -> bool {
        self.segments
            .iter()
            .find(|s| s.contains(v))
            .map(|s| s.valid)
            .unwrap_or(true)
    }

    /// Sample values from invalid segments — the injection targets.
    pub fn invalid_samples(&self) -> Vec<i64> {
        self.segments
            .iter()
            .filter(|s| !s.valid)
            .map(|s| s.sample())
            .collect()
    }
}

/// One alternative of an enumerative range.
#[derive(Debug, Clone, PartialEq)]
pub struct EnumAlternative {
    /// The accepted value.
    pub value: EnumValue,
    /// Whether this alternative is a valid setting.
    pub valid: bool,
}

/// The value of an enumerative alternative.
#[derive(Debug, Clone, PartialEq)]
pub enum EnumValue {
    /// Integer alternative (from `switch`/integer `if` chains).
    Int(i64),
    /// Word alternative (from `strcmp` chains).
    Str(String),
}

impl fmt::Display for EnumValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnumValue::Int(v) => write!(f, "{v}"),
            EnumValue::Str(s) => write!(f, "{s:?}"),
        }
    }
}

/// An enumerative data-range constraint.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EnumRange {
    /// Recognised alternatives.
    pub alternatives: Vec<EnumAlternative>,
    /// What happens to unmatched input: `true` when the fall-through arm is
    /// an error path (invalid), `false` when the input is silently coerced
    /// (the "silent overruling" pattern of §3.2, Figure 6c).
    pub unmatched_is_error: bool,
    /// Whether the fall-through arm overwrites the parameter's variable —
    /// the same location the match arms assign. Together with
    /// `!unmatched_is_error` this is the silent-overruling signature.
    pub unmatched_overwrites: bool,
    /// Whether string alternatives are matched case-insensitively.
    pub case_insensitive: bool,
}

/// A control-dependency constraint `(P, V, ⋄) → Q` (§2.2.4, Figure 3e):
/// parameter `dependent` takes effect only when `controller ⋄ value` holds.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlDep {
    /// The controlling parameter P.
    pub controller: String,
    /// The constant V that P is compared against.
    pub value: i64,
    /// The comparison ⋄.
    pub op: CmpOp,
    /// The dependent parameter Q.
    pub dependent: String,
    /// MAY-belief confidence (fraction of Q's usage sites guarded by the
    /// check); reported only when ≥ the 0.75 threshold.
    pub confidence: f64,
}

impl fmt::Display for ControlDep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(\"{}\", {}, {}) -> \"{}\"",
            self.controller, self.value, self.op, self.dependent
        )
    }
}

/// A value-relationship constraint `P ⋄ Q` (§2.2.5, Figure 3f).
#[derive(Debug, Clone, PartialEq)]
pub struct ValueRel {
    /// Left-hand parameter.
    pub lhs: String,
    /// Relation that must hold for a valid configuration.
    pub op: CmpOp,
    /// Right-hand parameter.
    pub rhs: String,
}

impl fmt::Display for ValueRel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\"{}\" {} \"{}\"", self.lhs, self.op, self.rhs)
    }
}

/// A stable diagnostic code in the `SPEX-Rxxx` / `SPEX-Vxxx` namespaces.
///
/// Every finding the checking layer emits carries exactly one code, so
/// machine consumers (CI gates, dashboards, SARIF viewers) can filter and
/// suppress findings without parsing prose. The `SPEX-R` family has one
/// code per constraint/check kind; the `SPEX-V` family carries the static
/// reaction-analysis verdicts (one code per predicted reaction class).
///
/// # Stability guarantees
///
/// The code namespace is append-only and part of the public contract:
///
/// * a code is **never renumbered, reused or re-purposed** — `SPEX-R003`
///   means "numeric-range violation" forever;
/// * new check kinds get **new** codes at the end of their namespace;
/// * the string form is always `SPEX-R` or `SPEX-V` followed by three
///   digits, and [`DiagCode::parse`] accepts exactly the strings
///   [`DiagCode::as_str`] produces.
///
/// Renderers must preserve the code verbatim; it is the primary key for
/// deduplicating and tracking findings across tool versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DiagCode {
    /// `SPEX-R001` — the value does not conform to the parameter's basic
    /// data type (wrong lexical class, or overflows the stored width).
    BasicType,
    /// `SPEX-R002` — the value violates the parameter's semantic type
    /// (nonexistent path/user/host, invalid port, absurd or mis-unit'd
    /// time/size, ...).
    SemanticType,
    /// `SPEX-R003` — the value falls in an invalid segment of the
    /// parameter's inferred numeric range.
    Range,
    /// `SPEX-R004` — the value is not an accepted alternative of the
    /// parameter's enumerative range (or is an explicitly rejected one).
    Enum,
    /// `SPEX-R005` — the setting is control-dependent on another
    /// parameter whose configured value disables it (it would be
    /// silently ignored).
    ControlDep,
    /// `SPEX-R006` — the value violates a relationship with another
    /// parameter's value (e.g. `min_len < max_len`).
    ValueRel,
    /// `SPEX-R007` — the key names no known parameter.
    UnknownKey,
    /// `SPEX-V001` — a validation branch dominates the parameter's uses
    /// and its failure arm reaches a message-emitting or aborting call
    /// (the desired reaction to an invalid value).
    ReactChecked,
    /// `SPEX-V002` — the failure arm of the parameter's validation branch
    /// silently overwrites the value with a default and emits no message.
    ReactSilentFallback,
    /// `SPEX-V003` — the parameter flows into a dangerous sink (unsafe
    /// parse API, divisor, allocation size, sleep duration, array index)
    /// before any dominating check; an invalid value is detected late, as
    /// a crash or hang, if at all.
    ReactLateDetection,
    /// `SPEX-V004` — no validation branch guards the parameter at all.
    ReactUnchecked,
}

impl DiagCode {
    /// Every code, in namespace order.
    pub const ALL: [DiagCode; 11] = [
        DiagCode::BasicType,
        DiagCode::SemanticType,
        DiagCode::Range,
        DiagCode::Enum,
        DiagCode::ControlDep,
        DiagCode::ValueRel,
        DiagCode::UnknownKey,
        DiagCode::ReactChecked,
        DiagCode::ReactSilentFallback,
        DiagCode::ReactLateDetection,
        DiagCode::ReactUnchecked,
    ];

    /// The stable string form (`"SPEX-R003"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            DiagCode::BasicType => "SPEX-R001",
            DiagCode::SemanticType => "SPEX-R002",
            DiagCode::Range => "SPEX-R003",
            DiagCode::Enum => "SPEX-R004",
            DiagCode::ControlDep => "SPEX-R005",
            DiagCode::ValueRel => "SPEX-R006",
            DiagCode::UnknownKey => "SPEX-R007",
            DiagCode::ReactChecked => "SPEX-V001",
            DiagCode::ReactSilentFallback => "SPEX-V002",
            DiagCode::ReactLateDetection => "SPEX-V003",
            DiagCode::ReactUnchecked => "SPEX-V004",
        }
    }

    /// Parses the stable string form back ([`as_str`](DiagCode::as_str)'s
    /// exact output; anything else is `None`).
    pub fn parse(s: &str) -> Option<DiagCode> {
        DiagCode::ALL.into_iter().find(|c| c.as_str() == s)
    }

    /// The coarse category this code reports on (Table 11 vocabulary,
    /// plus `"unknown-key"`).
    pub fn category(&self) -> &'static str {
        match self {
            DiagCode::BasicType => "basic-type",
            DiagCode::SemanticType => "semantic-type",
            DiagCode::Range | DiagCode::Enum => "data-range",
            DiagCode::ControlDep => "control-dep",
            DiagCode::ValueRel => "value-rel",
            DiagCode::UnknownKey => "unknown-key",
            DiagCode::ReactChecked
            | DiagCode::ReactSilentFallback
            | DiagCode::ReactLateDetection
            | DiagCode::ReactUnchecked => "reaction",
        }
    }

    /// A one-line description of what the code means (SARIF rule help).
    pub fn summary(&self) -> &'static str {
        match self {
            DiagCode::BasicType => "value does not conform to the parameter's basic data type",
            DiagCode::SemanticType => "value violates the parameter's semantic type",
            DiagCode::Range => "value is outside the parameter's valid numeric range",
            DiagCode::Enum => "value is not an accepted enumerative alternative",
            DiagCode::ControlDep => "setting is disabled by its controlling parameter",
            DiagCode::ValueRel => "value violates a cross-parameter relationship",
            DiagCode::UnknownKey => "key names no known configuration parameter",
            DiagCode::ReactChecked => "invalid values are rejected with a message before any use",
            DiagCode::ReactSilentFallback => {
                "invalid values are silently overwritten with a default"
            }
            DiagCode::ReactLateDetection => {
                "parameter reaches a dangerous sink before any dominating check"
            }
            DiagCode::ReactUnchecked => "parameter is used without any validation branch",
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The payload of a constraint.
#[derive(Debug, Clone, PartialEq)]
pub enum ConstraintKind {
    /// Basic data type.
    BasicType(BasicType),
    /// Semantic type.
    SemanticType(SemType),
    /// Numeric range.
    Range(NumericRange),
    /// Enumerative range.
    EnumRange(EnumRange),
    /// Control dependency on another parameter.
    ControlDep(ControlDep),
    /// Value relationship with another parameter.
    ValueRel(ValueRel),
}

impl ConstraintKind {
    /// Coarse category name, matching the columns of Table 11.
    pub fn category(&self) -> &'static str {
        self.code().category()
    }

    /// The stable diagnostic code a violation of this constraint kind is
    /// reported under (see [`DiagCode`] for the namespace guarantees).
    pub fn code(&self) -> DiagCode {
        match self {
            ConstraintKind::BasicType(_) => DiagCode::BasicType,
            ConstraintKind::SemanticType(_) => DiagCode::SemanticType,
            ConstraintKind::Range(_) => DiagCode::Range,
            ConstraintKind::EnumRange(_) => DiagCode::Enum,
            ConstraintKind::ControlDep(_) => DiagCode::ControlDep,
            ConstraintKind::ValueRel(_) => DiagCode::ValueRel,
        }
    }
}

/// One inferred constraint with its provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// The constrained parameter.
    pub param: String,
    /// What the constraint says.
    pub kind: ConstraintKind,
    /// Function the evidence was found in (empty when not applicable).
    pub in_function: String,
    /// Source location of the evidence.
    pub span: Span,
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ConstraintKind::BasicType(t) => write!(f, "\"{}\" has basic type {t}", self.param),
            ConstraintKind::SemanticType(t) => {
                write!(f, "\"{}\" has semantic type {t}", self.param)
            }
            ConstraintKind::Range(r) => match r.valid_interval() {
                Some((lo, hi)) => write!(
                    f,
                    "\"{}\" valid range [{}, {}]",
                    self.param,
                    lo.map(|v| v.to_string()).unwrap_or_else(|| "-inf".into()),
                    hi.map(|v| v.to_string()).unwrap_or_else(|| "+inf".into()),
                ),
                None => write!(f, "\"{}\" has a range constraint", self.param),
            },
            ConstraintKind::EnumRange(e) => {
                let vals: Vec<String> =
                    e.alternatives.iter().map(|a| a.value.to_string()).collect();
                write!(f, "\"{}\" in {{{}}}", self.param, vals.join(", "))
            }
            ConstraintKind::ControlDep(d) => write!(f, "{d}"),
            ConstraintKind::ValueRel(r) => write!(f, "{r}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_type_from_ctype() {
        assert_eq!(
            BasicType::from_ctype(&CType::int()),
            BasicType::Int {
                bits: 32,
                signed: true
            }
        );
        assert_eq!(BasicType::from_ctype(&CType::string()), BasicType::Str);
        assert_eq!(BasicType::from_ctype(&CType::Bool), BasicType::Bool);
    }

    #[test]
    fn cmp_op_algebra() {
        assert_eq!(CmpOp::Lt.flipped(), CmpOp::Gt);
        assert_eq!(CmpOp::Lt.negated(), CmpOp::Ge);
        assert_eq!(CmpOp::Eq.flipped(), CmpOp::Eq);
        assert!(CmpOp::Le.eval(3, 3));
        assert!(!CmpOp::Gt.eval(3, 3));
    }

    #[test]
    fn range_segment_membership_and_sampling() {
        let s = RangeSegment {
            lo: Some(4),
            hi: Some(255),
            valid: true,
        };
        assert!(s.contains(4));
        assert!(s.contains(255));
        assert!(!s.contains(3));
        assert!(s.contains(s.sample()));
        let open = RangeSegment {
            lo: Some(256),
            hi: None,
            valid: false,
        };
        assert!(open.contains(open.sample()));
    }

    #[test]
    fn numeric_range_validity() {
        // OpenLDAP index_intlen: [4, 255] valid, outside invalid.
        let r = NumericRange {
            cutpoints: vec![4, 255],
            segments: vec![
                RangeSegment {
                    lo: None,
                    hi: Some(3),
                    valid: false,
                },
                RangeSegment {
                    lo: Some(4),
                    hi: Some(255),
                    valid: true,
                },
                RangeSegment {
                    lo: Some(256),
                    hi: None,
                    valid: false,
                },
            ],
        };
        assert!(r.is_valid(100));
        assert!(!r.is_valid(300));
        assert_eq!(r.valid_interval(), Some((Some(4), Some(255))));
        let samples = r.invalid_samples();
        assert_eq!(samples.len(), 2);
        assert!(samples.iter().all(|v| !r.is_valid(*v)));
    }

    #[test]
    fn unit_conversions() {
        assert_eq!(TimeUnit::Milli.in_micros(), 1_000);
        assert_eq!(TimeUnit::from_micros(3_600_000_000), Some(TimeUnit::Hour));
        assert_eq!(SizeUnit::from_bytes(1 << 20), Some(SizeUnit::MB));
        assert_eq!(SizeUnit::from_bytes(12345), None);
    }

    #[test]
    fn constraint_display_forms() {
        let c = Constraint {
            param: "fsync".into(),
            kind: ConstraintKind::ControlDep(ControlDep {
                controller: "fsync".into(),
                value: 0,
                op: CmpOp::Ne,
                dependent: "commit_siblings".into(),
                confidence: 1.0,
            }),
            in_function: "RecordTransactionCommit".into(),
            span: Span::unknown(),
        };
        assert_eq!(c.to_string(), "(\"fsync\", 0, !=) -> \"commit_siblings\"");
        assert_eq!(c.kind.category(), "control-dep");
        assert_eq!(c.kind.code(), DiagCode::ControlDep);
    }

    #[test]
    fn diag_codes_are_stable_unique_and_parse_back() {
        let mut seen = std::collections::BTreeSet::new();
        for code in DiagCode::ALL {
            let s = code.as_str();
            assert!(
                (s.starts_with("SPEX-R") || s.starts_with("SPEX-V")) && s.len() == 9,
                "{s}"
            );
            assert!(s[6..].chars().all(|c| c.is_ascii_digit()), "{s}");
            assert!(seen.insert(s), "duplicate code {s}");
            assert_eq!(DiagCode::parse(s), Some(code));
        }
        assert_eq!(DiagCode::parse("SPEX-R999"), None);
        assert_eq!(DiagCode::parse("spex-r003"), None, "codes are exact");
        // The documented anchors: R003 is and stays the range violation,
        // V003 is and stays the late-detection verdict.
        assert_eq!(DiagCode::Range.as_str(), "SPEX-R003");
        assert_eq!(DiagCode::Range.category(), "data-range");
        assert_eq!(DiagCode::ReactLateDetection.as_str(), "SPEX-V003");
        assert_eq!(DiagCode::ReactLateDetection.category(), "reaction");
    }
}
