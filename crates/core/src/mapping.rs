//! The three parameter-to-variable mapping toolkits (§2.2.1, Figure 4).
//!
//! Starting from the annotations, SPEX extracts `(parameter name, program
//! variable)` pairs:
//!
//! * **structure-based**: read the global option table's initializer; each
//!   row names a parameter and points at its backing global (PostgreSQL,
//!   MySQL, Storage-A style) or at a handler function (Apache style);
//! * **comparison-based**: inside the annotated parsing function, find
//!   string comparisons of the name input against literals; the value input
//!   *within the matched branch* is the parameter's variable (Redis, Squid
//!   style);
//! * **container-based**: every call of the annotated getter with a literal
//!   name yields that call's result as the parameter's variable (Hypertable
//!   style).

use crate::annotations::{Annotation, VarRef};
use spex_dataflow::{AnalyzedModule, MemLoc, TaintRoot, UseSite};
use spex_ir::{
    Callee, ConstVal, FuncId, GlobalId, Instr, Place, PlaceBase, PlaceElem, Terminator, ValueId,
};
use spex_lang::builtins::Builtin;
use spex_lang::diag::Span;
use spex_lang::types::CType;
use std::collections::HashMap;

/// A parameter with its extracted data-flow roots.
#[derive(Debug, Clone)]
pub struct MappedParam {
    /// The configuration parameter's name as it appears in config files.
    pub name: String,
    /// Taint seeds for the parameter's data flow.
    pub roots: Vec<TaintRoot>,
    /// Declared type of the backing variable, when the mapping reveals one.
    pub decl_ty: Option<CType>,
    /// Declaration/usage site used for reporting.
    pub decl_span: Span,
    /// When mapped through an option table: the table global and row index,
    /// used to resolve per-row constant fields (e.g. PostgreSQL's
    /// min/max columns).
    pub table_row: Option<(GlobalId, usize)>,
    /// The backing global, when the mapping is a direct variable pointer.
    pub backing_global: Option<GlobalId>,
}

/// Extraction failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappingError(pub String);

impl std::fmt::Display for MappingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mapping extraction: {}", self.0)
    }
}

impl std::error::Error for MappingError {}

/// Runs all annotations against the module and merges the results by
/// parameter name.
pub fn extract_mappings(
    am: &AnalyzedModule,
    anns: &[Annotation],
) -> Result<Vec<MappedParam>, MappingError> {
    let mut per_ann = Vec::with_capacity(anns.len());
    for ann in anns {
        per_ann.push(extract_annotation(am, ann)?);
    }
    Ok(merge_mappings(per_ann))
}

/// Runs one annotation against the module — the per-annotation unit the
/// pass cache stores, so an edit invalidates only the annotations it is
/// relevant to.
pub fn extract_annotation(
    am: &AnalyzedModule,
    ann: &Annotation,
) -> Result<Vec<MappedParam>, MappingError> {
    match ann {
        Annotation::StructDirect {
            table,
            par_field,
            var_field,
            ..
        } => extract_struct_direct(am, table, *par_field, *var_field),
        Annotation::StructFunction {
            table,
            par_field,
            handler_field,
            value_arg,
            ..
        } => extract_struct_function(am, table, *par_field, *handler_field, value_arg),
        Annotation::Parser { function, par, var } => extract_parser(am, function, par, var),
        Annotation::Getter { function, par_arg } => extract_getter(am, function, *par_arg - 1),
    }
}

/// Merges per-annotation extraction results by parameter name, first
/// occurrence winning the slot and later occurrences contributing extra
/// roots (and a declared type when the first had none).
pub fn merge_mappings<I>(per_ann: I) -> Vec<MappedParam>
where
    I: IntoIterator<Item = Vec<MappedParam>>,
{
    let mut by_name: HashMap<String, MappedParam> = HashMap::new();
    let mut order: Vec<String> = Vec::new();
    for found in per_ann {
        for p in found {
            match by_name.get_mut(&p.name) {
                Some(existing) => {
                    existing.roots.extend(p.roots);
                    if existing.decl_ty.is_none() {
                        existing.decl_ty = p.decl_ty;
                    }
                }
                None => {
                    order.push(p.name.clone());
                    by_name.insert(p.name.clone(), p);
                }
            }
        }
    }
    order
        .into_iter()
        .map(|n| by_name.remove(&n).expect("ordered name exists"))
        .collect()
}

// --- Structure-based (direct pointer) --------------------------------------

fn extract_struct_direct(
    am: &AnalyzedModule,
    table: &str,
    par_field: u32,
    var_field: u32,
) -> Result<Vec<MappedParam>, MappingError> {
    let (gid, rows) = table_rows(am, table)?;
    // Generic-dispatcher values: in PostgreSQL-style code the parse loop
    // assigns `*(table[i].var) = v` through a runtime pointer. The assigned
    // value `v` (and hence the validation code around it) belongs to every
    // parameter of the table; per-row constants (min/max columns) are later
    // resolved through `table_row`.
    let shared_roots = dispatcher_value_roots(am, gid, var_field);
    let mut out = Vec::new();
    for (row_idx, row) in rows.iter().enumerate() {
        let ConstVal::Aggregate(fields) = row else {
            continue;
        };
        let Some(ConstVal::Str(name)) = fields.get((par_field - 1) as usize) else {
            continue;
        };
        let Some(ConstVal::GlobalRef(backing)) = fields.get((var_field - 1) as usize) else {
            continue;
        };
        let g = am.module.global(*backing);
        let mut roots = vec![TaintRoot::Mem(MemLoc::Global(*backing, Vec::new()))];
        roots.extend(shared_roots.iter().cloned());
        out.push(MappedParam {
            name: name.clone(),
            roots,
            decl_ty: Some(g.ty.clone()),
            decl_span: g.span,
            table_row: Some((gid, row_idx)),
            backing_global: Some(*backing),
        });
    }
    Ok(out)
}

/// Values stored through pointers loaded from the table's `var` field —
/// the right-hand sides of `*(table[i].var) = v` in a generic dispatcher.
fn dispatcher_value_roots(am: &AnalyzedModule, table: GlobalId, var_field: u32) -> Vec<TaintRoot> {
    let mut roots = Vec::new();
    for (fi, func) in am.module.functions.iter().enumerate() {
        let fid = FuncId(fi as u32);
        let ud = &am.usedefs[fid.index()];
        for (_, _, instr, _) in func.iter_instrs() {
            let Instr::Store { place, value } = instr else {
                continue;
            };
            let PlaceBase::ValuePtr(pv) = place.base else {
                continue;
            };
            let Some(Instr::Load { place: src, .. }) = ud.def_instr(func, pv) else {
                continue;
            };
            if src.base != PlaceBase::Global(table) {
                continue;
            }
            let is_var_field = matches!(
                src.elems.as_slice(),
                [_, PlaceElem::Field(f)] if *f == var_field - 1
            );
            if is_var_field {
                roots.push(TaintRoot::Value(fid, *value));
            }
        }
    }
    roots
}

// --- Structure-based (handler function) -------------------------------------

fn extract_struct_function(
    am: &AnalyzedModule,
    table: &str,
    par_field: u32,
    handler_field: u32,
    value_arg: &str,
) -> Result<Vec<MappedParam>, MappingError> {
    let (gid, rows) = table_rows(am, table)?;
    let mut out = Vec::new();
    for (row_idx, row) in rows.iter().enumerate() {
        let ConstVal::Aggregate(fields) = row else {
            continue;
        };
        let Some(ConstVal::Str(name)) = fields.get((par_field - 1) as usize) else {
            continue;
        };
        let Some(ConstVal::FuncRef(handler)) = fields.get((handler_field - 1) as usize) else {
            continue;
        };
        let func = am.module.func(*handler);
        let Some(arg_idx) = func.params.iter().position(|(n, _, _)| n == value_arg) else {
            return Err(MappingError(format!(
                "handler `{}` has no parameter `{}`",
                func.name, value_arg
            )));
        };
        let mut roots = vec![TaintRoot::FuncParam(*handler, arg_idx as u32)];
        roots.extend(handler_out_params(am, *handler, arg_idx as u32));
        out.push(MappedParam {
            name: name.clone(),
            roots,
            decl_ty: func.params.get(arg_idx).map(|(_, t, _)| t.clone()),
            decl_span: func.span,
            table_row: Some((gid, row_idx)),
            backing_global: None,
        });
    }
    Ok(out)
}

/// Locations a handler parses into through helper calls: inside the
/// handler, a call passing the value parameter together with `&location`
/// follows the parse-helper convention (`parse_onoff(arg, &flag)`), so the
/// location is part of the parameter's variable set.
fn handler_out_params(am: &AnalyzedModule, handler: FuncId, value_arg: u32) -> Vec<TaintRoot> {
    let func = am.module.func(handler);
    let ud = &am.usedefs[handler.index()];
    let Some(value_param) = func.iter_instrs().find_map(|(_, _, i, _)| match i {
        Instr::Param { dst, index } if *index == value_arg => Some(*dst),
        _ => None,
    }) else {
        return Vec::new();
    };
    let mut roots = Vec::new();
    for (_, _, instr, _) in func.iter_instrs() {
        let Instr::Call {
            callee: Callee::Func(_),
            args,
            ..
        } = instr
        else {
            continue;
        };
        if !args.contains(&value_param) {
            continue;
        }
        for a in args {
            if let Some(Instr::AddrOf { place, .. }) = ud.def_instr(func, *a) {
                if let Some(loc) = MemLoc::from_place(handler, place) {
                    roots.push(TaintRoot::Mem(loc));
                }
            }
        }
    }
    roots
}

fn table_rows<'a>(
    am: &'a AnalyzedModule,
    table: &str,
) -> Result<(GlobalId, &'a [ConstVal]), MappingError> {
    let gid = am
        .module
        .global_by_name(table)
        .ok_or_else(|| MappingError(format!("no global named `{table}`")))?;
    match &am.module.global(gid).init {
        ConstVal::Aggregate(rows) => Ok((gid, rows)),
        _ => Err(MappingError(format!(
            "global `{table}` is not an aggregate table"
        ))),
    }
}

// --- Comparison-based --------------------------------------------------------

fn extract_parser(
    am: &AnalyzedModule,
    function: &str,
    par: &VarRef,
    var: &VarRef,
) -> Result<Vec<MappedParam>, MappingError> {
    let fid = am
        .module
        .function_by_name(function)
        .ok_or_else(|| MappingError(format!("no function named `{function}`")))?;
    let func = am.module.func(fid);
    let ud = &am.usedefs[fid.index()];
    let dom = &am.doms[fid.index()];

    let name_values = varref_values(am, fid, par)?;
    let mut out = Vec::new();

    // Find `strcmp`-family calls comparing a name value with a literal.
    for (b, i, instr, span) in func.iter_instrs() {
        let Instr::Call {
            dst: Some(dst),
            callee: Callee::Builtin(bi),
            args,
        } = instr
        else {
            continue;
        };
        if !bi.is_string_comparison() || args.len() < 2 {
            continue;
        }
        let lit = [args[0], args[1]]
            .into_iter()
            .find_map(|a| const_str(am, fid, a));
        let involves_name = args.iter().any(|a| name_values.contains(a));
        let (Some(lit), true) = (lit, involves_name) else {
            continue;
        };
        // Locate the match branch of this comparison.
        let Some(match_block) = match_branch_target(am, fid, *dst) else {
            continue;
        };
        // Collect value roots within the region dominated by the match
        // block.
        let roots = value_roots_in_region(am, fid, var, match_block, dom);
        let _ = (b, i);
        if !roots.is_empty() {
            out.push(MappedParam {
                name: lit,
                roots,
                decl_ty: None,
                decl_span: span,
                table_row: None,
                backing_global: None,
            });
        }
        let _ = ud;
    }
    Ok(out)
}

/// SSA values that represent the annotated `$name` / `$name[i]` input.
fn varref_values(
    am: &AnalyzedModule,
    fid: FuncId,
    r: &VarRef,
) -> Result<Vec<ValueId>, MappingError> {
    let func = am.module.func(fid);
    let param_idx = func
        .params
        .iter()
        .position(|(n, _, _)| n == &r.name)
        .ok_or_else(|| {
            MappingError(format!(
                "function `{}` has no parameter `{}`",
                func.name, r.name
            ))
        })?;
    let param_value = func
        .iter_instrs()
        .find_map(|(_, _, i, _)| match i {
            Instr::Param { dst, index } if *index as usize == param_idx => Some(*dst),
            _ => None,
        })
        .ok_or_else(|| MappingError(format!("parameter `{}` is unused", r.name)))?;
    match r.index {
        None => Ok(vec![param_value]),
        Some(idx) => {
            // Loads of `param[idx]`.
            let mut out = Vec::new();
            for (_, _, instr, _) in func.iter_instrs() {
                if let Instr::Load { dst, place } = instr {
                    if is_indexed_load_of(am, fid, place, param_value, idx) {
                        out.push(*dst);
                    }
                }
            }
            Ok(out)
        }
    }
}

fn is_indexed_load_of(
    am: &AnalyzedModule,
    fid: FuncId,
    place: &Place,
    base: ValueId,
    idx: u32,
) -> bool {
    if place.base != PlaceBase::ValuePtr(base) || place.elems.len() != 1 {
        return false;
    }
    match place.elems[0] {
        PlaceElem::IndexConst(i) => i == idx,
        PlaceElem::IndexValue(v) => const_int(am, fid, v) == Some(idx as i64),
        _ => false,
    }
}

/// Resolves the block executed when the string comparison *matches*.
///
/// Handles `strcmp(..) == 0`, `!strcmp(..)`, and a bare `strcmp(..)`
/// condition (where the *else* side is the match).
fn match_branch_target(
    am: &AnalyzedModule,
    fid: FuncId,
    cmp_dst: ValueId,
) -> Option<spex_ir::BlockId> {
    let func = am.module.func(fid);
    let ud = &am.usedefs[fid.index()];
    for site in ud.uses_of(cmp_dst) {
        match site {
            UseSite::Instr(b, i) => match &func.blocks[b.index()].instrs[*i].0 {
                Instr::Bin {
                    dst,
                    op: spex_lang::ast::BinOp::Eq,
                    lhs,
                    rhs,
                } => {
                    let other = if *lhs == cmp_dst { *rhs } else { *lhs };
                    if const_int(am, fid, other) == Some(0) {
                        if let Some((t, _)) = condbr_targets(func, *dst) {
                            return Some(t);
                        }
                    }
                }
                Instr::Bin {
                    dst,
                    op: spex_lang::ast::BinOp::Ne,
                    lhs,
                    rhs,
                } => {
                    let other = if *lhs == cmp_dst { *rhs } else { *lhs };
                    if const_int(am, fid, other) == Some(0) {
                        if let Some((_, e)) = condbr_targets(func, *dst) {
                            return Some(e);
                        }
                    }
                }
                Instr::Un {
                    dst,
                    op: spex_lang::ast::UnOp::Not,
                    ..
                } => {
                    if let Some((t, _)) = condbr_targets(func, *dst) {
                        return Some(t);
                    }
                }
                _ => {}
            },
            UseSite::Term(b) => {
                // `if (strcmp(a, b))`: nonzero means mismatch, so the match
                // is the else side.
                if let Terminator::CondBr { else_bb, .. } = &func.blocks[b.index()].term.0 {
                    return Some(*else_bb);
                }
            }
        }
    }
    None
}

fn condbr_targets(
    func: &spex_ir::Function,
    cond: ValueId,
) -> Option<(spex_ir::BlockId, spex_ir::BlockId)> {
    for blk in &func.blocks {
        if let Terminator::CondBr {
            cond: c,
            then_bb,
            else_bb,
        } = &blk.term.0
        {
            if *c == cond {
                return Some((*then_bb, *else_bb));
            }
        }
    }
    None
}

/// Roots for the `$value` input inside the matched branch: results of
/// conversions, stored-to locations, and callee parameters fed from it.
fn value_roots_in_region(
    am: &AnalyzedModule,
    fid: FuncId,
    var: &VarRef,
    region_head: spex_ir::BlockId,
    dom: &spex_ir::dom::DomTree,
) -> Vec<TaintRoot> {
    let func = am.module.func(fid);
    let Ok(value_values) = varref_values(am, fid, var) else {
        return Vec::new();
    };
    let mut roots = Vec::new();
    for (b, _, instr, _) in func.iter_instrs() {
        if !dom.dominates(region_head, b) {
            continue;
        }
        match instr {
            Instr::Load { dst, place } => {
                // `$argv[1]`-style: the indexed load inside the branch *is*
                // the parameter's value.
                if let Some(idx) = var.index {
                    if value_values.is_empty() {
                        // Loads were collected globally; check shape directly.
                        let _ = idx;
                    }
                }
                if value_values.contains(dst) {
                    roots.push(TaintRoot::Value(fid, *dst));
                    let _ = place;
                }
            }
            Instr::Call { dst, callee, args } => {
                for (pos, a) in args.iter().enumerate() {
                    if !value_values.contains(a) {
                        continue;
                    }
                    match callee {
                        Callee::Builtin(bi)
                            if bi.is_numeric_conversion() || *bi == Builtin::Strdup =>
                        {
                            if let Some(d) = dst {
                                roots.push(TaintRoot::Value(fid, *d));
                            }
                        }
                        // `sscanf(value, fmt, &out)`: the out-parameters
                        // become the parameter's storage; the call result
                        // is rooted too so the unsafe-API evidence sees the
                        // call on this parameter's flow.
                        Callee::Builtin(Builtin::Sscanf) if pos == 0 => {
                            if let Some(d) = dst {
                                roots.push(TaintRoot::Value(fid, *d));
                            }
                            for out_arg in args.iter().skip(2) {
                                if let Some(Instr::AddrOf { place, .. }) =
                                    am.usedefs[fid.index()].def_instr(func, *out_arg)
                                {
                                    if let Some(loc) = MemLoc::from_place(fid, place) {
                                        roots.push(TaintRoot::Mem(loc));
                                    }
                                }
                            }
                        }
                        Callee::Func(g) => {
                            roots.push(TaintRoot::FuncParam(*g, pos as u32));
                            // Out-parameters of parse helpers
                            // (`parse_onoff(value, &g_flag)`) are the
                            // parameter's storage.
                            for out_arg in args {
                                if let Some(Instr::AddrOf { place, .. }) =
                                    am.usedefs[fid.index()].def_instr(func, *out_arg)
                                {
                                    if let Some(loc) = MemLoc::from_place(fid, place) {
                                        roots.push(TaintRoot::Mem(loc));
                                    }
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }
            Instr::Store { place, value } if value_values.contains(value) => {
                if let Some(loc) = MemLoc::from_place(fid, place) {
                    roots.push(TaintRoot::Mem(loc));
                }
            }
            Instr::Cast { dst, operand, .. } if value_values.contains(operand) => {
                roots.push(TaintRoot::Value(fid, *dst));
            }
            _ => {}
        }
    }
    roots
}

// --- Container-based ---------------------------------------------------------

fn extract_getter(
    am: &AnalyzedModule,
    function: &str,
    par_arg: u32,
) -> Result<Vec<MappedParam>, MappingError> {
    let target = am.module.function_by_name(function);
    let mut out = Vec::new();
    for (fi, func) in am.module.functions.iter().enumerate() {
        let fid = FuncId(fi as u32);
        for (_, _, instr, span) in func.iter_instrs() {
            let Instr::Call {
                dst: Some(dst),
                callee,
                args,
            } = instr
            else {
                continue;
            };
            let is_target = match callee {
                Callee::Func(f) => Some(*f) == target,
                Callee::Builtin(b) => b.name() == function,
                Callee::Indirect(_) => false,
            };
            if !is_target {
                continue;
            }
            let Some(name) = args
                .get(par_arg as usize)
                .and_then(|a| const_str(am, fid, *a))
            else {
                continue;
            };
            out.push(MappedParam {
                name,
                roots: vec![TaintRoot::Value(fid, *dst)],
                decl_ty: Some(func.value_type(*dst).clone()),
                decl_span: span,
                table_row: None,
                backing_global: None,
            });
        }
    }
    Ok(out)
}

// --- Incremental invalidation -------------------------------------------------

/// Whether an edit to function `fid` could change the result of
/// [`extract_mappings`] (conservative, for the pass-level cache).
///
/// Mapping extraction reads the module header (option tables, globals,
/// struct layouts) — callers invalidate wholesale on header changes — plus
/// a small set of function-body patterns. A function matters to extraction
/// only when it:
///
/// * is named by a `@PARSER` or `@GETTER` annotation (its body is scanned
///   directly);
/// * may be a `@STRUCT`-table handler, i.e. its address is taken anywhere
///   (handler bodies are scanned for out-parameter parse helpers);
/// * contains a store through a runtime pointer while a direct-pointer
///   table is annotated (the PostgreSQL-style generic dispatcher pattern);
/// * calls an annotated getter (each literal-name call site is a mapping).
///
/// Anything else — arithmetic, guards, plain builtin calls — cannot alter
/// what [`extract_mappings`] returns, so cached mappings stay valid.
pub fn mapping_relevant(am: &AnalyzedModule, fid: FuncId, anns: &[Annotation]) -> bool {
    let f = am.module.func(fid);
    let mut has_struct_direct = false;
    let mut has_struct_function = false;
    let mut getters: Vec<&str> = Vec::new();
    for ann in anns {
        match ann {
            Annotation::StructDirect { .. } => has_struct_direct = true,
            Annotation::StructFunction { .. } => has_struct_function = true,
            Annotation::Parser { function, .. } => {
                if function == &f.name {
                    return true;
                }
            }
            Annotation::Getter { function, .. } => getters.push(function),
        }
    }
    if has_struct_function
        && am
            .callgraph
            .address_taken
            .iter()
            .any(|(taken, _)| *taken == fid)
    {
        return true;
    }
    for (_, _, instr, _) in f.iter_instrs() {
        match instr {
            Instr::Store { place, .. }
                if has_struct_direct && matches!(place.base, PlaceBase::ValuePtr(_)) =>
            {
                return true;
            }
            Instr::Call { callee, .. } if !getters.is_empty() => {
                let name = match callee {
                    Callee::Func(t) => Some(am.module.func(*t).name.as_str()),
                    Callee::Builtin(b) => Some(b.name()),
                    Callee::Indirect(_) => None,
                };
                if name.is_some_and(|n| getters.contains(&n)) {
                    return true;
                }
            }
            _ => {}
        }
    }
    false
}

// --- Constant resolution helpers ----------------------------------------------

/// The string literal a value is defined as, if any.
pub fn const_str(am: &AnalyzedModule, fid: FuncId, v: ValueId) -> Option<String> {
    let func = am.module.func(fid);
    match am.usedefs[fid.index()].def_instr(func, v) {
        Some(Instr::Const {
            val: ConstVal::Str(s),
            ..
        }) => Some(s.clone()),
        _ => None,
    }
}

/// The integer constant a value is defined as, if any (follows casts).
pub fn const_int(am: &AnalyzedModule, fid: FuncId, v: ValueId) -> Option<i64> {
    let func = am.module.func(fid);
    let mut cur = v;
    for _ in 0..8 {
        match am.usedefs[fid.index()].def_instr(func, cur) {
            Some(Instr::Const { val, .. }) => return val.as_int(),
            Some(Instr::Cast { operand, .. }) => cur = *operand,
            Some(Instr::Un {
                op: spex_lang::ast::UnOp::Neg,
                operand,
                ..
            }) => {
                return const_int(am, fid, *operand).map(|x| -x);
            }
            _ => return None,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotations::Annotation;
    use spex_dataflow::AnalyzedModule;

    fn setup(src: &str) -> AnalyzedModule {
        let p = spex_lang::parse_program(src).unwrap();
        let m = spex_ir::lower_program(&p).unwrap();
        AnalyzedModule::build(m)
    }

    #[test]
    fn struct_direct_mapping_postgresql_style() {
        let am = setup(
            r#"
            int deadlock_timeout = 1000;
            int max_connections = 100;
            struct config_int { char* name; int* var; int min; int max; };
            struct config_int ConfigureNamesInt[] = {
                { "deadlock_timeout", &deadlock_timeout, 1, 600000 },
                { "max_connections", &max_connections, 1, 8192 },
            };
            "#,
        );
        let anns = Annotation::parse(
            "{ @STRUCT = ConfigureNamesInt\n @PAR = [config_int, 1]\n @VAR = [config_int, 2] }",
        )
        .unwrap();
        let params = extract_mappings(&am, &anns).unwrap();
        assert_eq!(params.len(), 2);
        assert_eq!(params[0].name, "deadlock_timeout");
        assert!(params[0].backing_global.is_some());
        assert_eq!(params[0].table_row.map(|(_, r)| r), Some(0));
        assert_eq!(params[1].name, "max_connections");
        assert_eq!(params[1].decl_ty, Some(CType::int()));
    }

    #[test]
    fn struct_function_mapping_apache_style() {
        let am = setup(
            r#"
            struct command_rec { char* name; fnptr handler; };
            int set_document_root(char* arg) { return open(arg, 0); }
            struct command_rec core_cmds[] = {
                { "DocumentRoot", set_document_root },
            };
            "#,
        );
        let anns = Annotation::parse(
            "{ @STRUCT = core_cmds\n @PAR = [command_rec, 1]\n @VAR = ([command_rec, 2], $arg) }",
        )
        .unwrap();
        let params = extract_mappings(&am, &anns).unwrap();
        assert_eq!(params.len(), 1);
        assert_eq!(params[0].name, "DocumentRoot");
        let fid = am.module.function_by_name("set_document_root").unwrap();
        assert_eq!(params[0].roots, vec![TaintRoot::FuncParam(fid, 0)]);
    }

    #[test]
    fn comparison_mapping_redis_style() {
        let am = setup(
            r#"
            int maxidletime = 0;
            char* logfile = "";
            void loadServerConfig(char** argv) {
                if (strcasecmp(argv[0], "timeout") == 0) {
                    maxidletime = atoi(argv[1]);
                } else if (strcasecmp(argv[0], "logfile") == 0) {
                    logfile = strdup(argv[1]);
                }
            }
            "#,
        );
        let anns =
            Annotation::parse("{ @PARSER = loadServerConfig\n @PAR = $argv[0]\n @VAR = $argv[1] }")
                .unwrap();
        let params = extract_mappings(&am, &anns).unwrap();
        let names: Vec<&str> = params.iter().map(|p| p.name.as_str()).collect();
        assert!(names.contains(&"timeout"), "found params: {names:?}");
        assert!(names.contains(&"logfile"), "found params: {names:?}");
        // The timeout parameter's roots must include the atoi result or the
        // store into maxidletime.
        let timeout = params.iter().find(|p| p.name == "timeout").unwrap();
        assert!(!timeout.roots.is_empty());
    }

    #[test]
    fn getter_mapping_hypertable_style() {
        let am = setup(
            r#"
            int props[16];
            int get_i32(char* key) { return props[0]; }
            void setup() {
                int retry = get_i32("Connection.Retry.Interval");
                sleep(retry);
            }
            "#,
        );
        let anns = Annotation::parse("{ @GETTER = get_i32\n @PAR = 1\n @VAR = $RET }").unwrap();
        let params = extract_mappings(&am, &anns).unwrap();
        assert_eq!(params.len(), 1);
        assert_eq!(params[0].name, "Connection.Retry.Interval");
        assert!(matches!(params[0].roots[0], TaintRoot::Value(..)));
    }

    #[test]
    fn missing_table_is_an_error() {
        let am = setup("int x = 1;");
        let anns = Annotation::parse("{ @STRUCT = nope\n @PAR = [s, 1]\n @VAR = [s, 2] }").unwrap();
        assert!(extract_mappings(&am, &anns).is_err());
    }

    #[test]
    fn duplicate_names_merge_roots() {
        let am = setup(
            r#"
            int a_var = 0;
            int b_var = 0;
            struct opt { char* name; int* var; };
            struct opt t1[] = { { "shared", &a_var } };
            struct opt t2[] = { { "shared", &b_var } };
            "#,
        );
        let anns = Annotation::parse(
            "{ @STRUCT = t1\n @PAR = [opt, 1]\n @VAR = [opt, 2] }\n\
             { @STRUCT = t2\n @PAR = [opt, 1]\n @VAR = [opt, 2] }",
        )
        .unwrap();
        let params = extract_mappings(&am, &anns).unwrap();
        assert_eq!(params.len(), 1);
        assert_eq!(params[0].roots.len(), 2);
    }
}
