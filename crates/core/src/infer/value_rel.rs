//! Value-relationship inference (§2.2.5, Figure 3f).
//!
//! SPEX looks for comparison statements between values on different
//! parameters' data-flow paths. A direct comparison `P ⋄ Q` yields the
//! relation immediately; relations also *transit through one intermediate
//! variable*: from `length >= ft_min_word_len && length < ft_max_word_len`
//! (both comparing the same local `length`), SPEX derives
//! `ft_min_word_len < ft_max_word_len`.
//!
//! Whether the relation indicates a valid setting is decided like range
//! inference: if the region where the relation holds is an error path, the
//! constraint is the negated relation.

use crate::constraint::{CmpOp, Constraint, ConstraintKind, ValueRel};
use crate::infer::branch::{branch_sides, classify_region};
use spex_dataflow::{AnalyzedModule, ModuleSummaries, ReturnTransfer, TaintResult};
use spex_ir::{Callee, FuncId, Instr, ValueId};
use spex_lang::diag::Span;
use std::collections::HashMap;

/// One observed comparison touching parameters.
struct Observation {
    func: FuncId,
    /// `X ⋄ P`-style fact: untainted (or differently-tainted) left value.
    left: Side,
    op: CmpOp,
    right: Side,
    span: Span,
    /// Whether the relation as written guards an error region when true.
    true_side_invalid: bool,
}

#[derive(Clone, PartialEq, Eq)]
enum Side {
    /// A value on a parameter's data-flow path.
    Param(usize),
    /// Any other value, identified by SSA id (the potential intermediate).
    Other(ValueId),
}

/// Infers value relationships across the parameter set.
pub fn infer(
    am: &AnalyzedModule,
    summaries: &ModuleSummaries,
    names: &[String],
    vindex: &HashMap<(FuncId, ValueId), Vec<usize>>,
) -> Vec<Constraint> {
    // Collect observations per function.
    let mut obs: Vec<Observation> = Vec::new();
    for (fi, func) in am.module.functions.iter().enumerate() {
        let f = FuncId(fi as u32);
        for (_, _, instr, span) in func.iter_instrs() {
            // A call into a summarised param-vs-param predicate helper is a
            // comparison of its arguments performed one frame down; surface
            // it here as an ordinary observation on the caller's values.
            if let Instr::Call {
                dst,
                callee: Callee::Func(g),
                args,
            } = instr
            {
                let Some(ReturnTransfer::ParamPredicate { left, op, right }) =
                    &summaries.get(*g).ret
                else {
                    continue;
                };
                let Some(cmp) = CmpOp::from_binop(*op) else {
                    continue;
                };
                let (Some(&la), Some(&ra)) = (args.get(*left as usize), args.get(*right as usize))
                else {
                    continue;
                };
                let lp = vindex.get(&(f, la));
                let rp = vindex.get(&(f, ra));
                if lp.is_none() && rp.is_none() {
                    continue;
                }
                let true_side_invalid = dst
                    .and_then(|d| branch_sides(am, f, d))
                    .map(|(t, _)| classify_region(am, f, t, &TaintResult::default()).is_invalid())
                    .unwrap_or(false);
                let side = |v: ValueId, params: Option<&Vec<usize>>| match params {
                    Some(ps) if !ps.is_empty() => Side::Param(ps[0]),
                    _ => Side::Other(v),
                };
                obs.push(Observation {
                    func: f,
                    left: side(la, lp),
                    op: cmp,
                    right: side(ra, rp),
                    span,
                    true_side_invalid,
                });
                continue;
            }
            let Instr::Bin { dst, op, lhs, rhs } = instr else {
                continue;
            };
            let Some(cmp) = CmpOp::from_binop(*op) else {
                continue;
            };
            let lp = vindex.get(&(f, *lhs));
            let rp = vindex.get(&(f, *rhs));
            if lp.is_none() && rp.is_none() {
                continue;
            }
            let true_side_invalid = branch_sides(am, f, *dst)
                .map(|(t, _)| classify_region(am, f, t, &TaintResult::default()).is_invalid())
                .unwrap_or(false);
            let side = |v: ValueId, params: Option<&Vec<usize>>| match params {
                Some(ps) if !ps.is_empty() => Side::Param(ps[0]),
                _ => Side::Other(v),
            };
            obs.push(Observation {
                func: f,
                left: side(*lhs, lp),
                op: cmp,
                right: side(*rhs, rp),
                span,
                true_side_invalid,
            });
        }
    }

    let mut out: Vec<(usize, CmpOp, usize, Span)> = Vec::new();
    // Direct comparisons.
    for o in &obs {
        if let (Side::Param(p), Side::Param(q)) = (&o.left, &o.right) {
            if p != q {
                let rel = if o.true_side_invalid {
                    o.op.negated()
                } else {
                    o.op
                };
                out.push((*p, rel, *q, o.span));
            }
        }
    }
    // Transitive through one shared intermediate value.
    for (i, a) in obs.iter().enumerate() {
        for b in obs.iter().skip(i + 1) {
            if a.func != b.func {
                continue;
            }
            // Normalise both to `X ⋄ P` form with X on the left.
            let (xa, oa, pa) = match (&a.left, &a.right) {
                (Side::Other(x), Side::Param(p)) => (*x, a.op, *p),
                (Side::Param(p), Side::Other(x)) => (*x, a.op.flipped(), *p),
                _ => continue,
            };
            let (xb, ob, pb) = match (&b.left, &b.right) {
                (Side::Other(x), Side::Param(p)) => (*x, b.op, *p),
                (Side::Param(p), Side::Other(x)) => (*x, b.op.flipped(), *p),
                _ => continue,
            };
            if xa != xb || pa == pb {
                continue;
            }
            // From X ⋄a Pa and X ⋄b Pb derive Pa rel Pb:
            // Pa ⋄a' X (flip a), then chain with X ⋄b Pb.
            if let Some(rel) = chain(oa.flipped(), ob) {
                out.push((pa, rel, pb, a.span));
            }
        }
    }

    // Deduplicate with normalised orientation.
    let mut seen = std::collections::HashSet::new();
    let mut constraints = Vec::new();
    for (p, rel, q, span) in out {
        let (p, rel, q) = if names[p] <= names[q] {
            (p, rel, q)
        } else {
            (q, rel.flipped(), p)
        };
        if !seen.insert((p, rel, q)) {
            continue;
        }
        constraints.push(Constraint {
            param: names[p].clone(),
            kind: ConstraintKind::ValueRel(ValueRel {
                lhs: names[p].clone(),
                op: rel,
                rhs: names[q].clone(),
            }),
            in_function: String::new(),
            span,
        });
    }
    constraints
}

/// Chains `P ⋄1 X` and `X ⋄2 Q` into `P rel Q`, when the composition is
/// definite.
fn chain(o1: CmpOp, o2: CmpOp) -> Option<CmpOp> {
    use CmpOp::*;
    Some(match (o1, o2) {
        // Strictness wins: P < X ≤ Q, P ≤ X < Q, P < X < Q all give P < Q.
        (Lt, Lt) | (Lt, Le) | (Le, Lt) => Lt,
        (Le, Le) => Le,
        (Gt, Gt) | (Gt, Ge) | (Ge, Gt) => Gt,
        (Ge, Ge) => Ge,
        // Equality relays the other side.
        (Eq, other) => other,
        (other, Eq) => other,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotations::Annotation;
    use crate::infer::Spex;

    const TABLE_ANN: &str = "{ @STRUCT = options\n @PAR = [opt, 1]\n @VAR = [opt, 2] }";

    fn rels_of(src: &str) -> Vec<String> {
        let p = spex_lang::parse_program(src).unwrap();
        let m = spex_ir::lower_program(&p).unwrap();
        let anns = Annotation::parse(TABLE_ANN).unwrap();
        let a = Spex::analyze(m, &anns);
        a.all_constraints()
            .filter_map(|c| match &c.kind {
                ConstraintKind::ValueRel(v) => Some(v.to_string()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn chain_composition_table() {
        assert_eq!(chain(CmpOp::Le, CmpOp::Lt), Some(CmpOp::Lt));
        assert_eq!(chain(CmpOp::Lt, CmpOp::Le), Some(CmpOp::Lt));
        assert_eq!(chain(CmpOp::Le, CmpOp::Le), Some(CmpOp::Le));
        assert_eq!(chain(CmpOp::Ge, CmpOp::Gt), Some(CmpOp::Gt));
        assert_eq!(chain(CmpOp::Eq, CmpOp::Lt), Some(CmpOp::Lt));
        assert_eq!(chain(CmpOp::Lt, CmpOp::Gt), None);
        assert_eq!(chain(CmpOp::Ne, CmpOp::Lt), None);
    }

    #[test]
    fn direct_comparison_of_two_params() {
        let rels = rels_of(
            r#"
            int min_spare = 5;
            int max_spare = 10;
            struct opt { char* name; int* var; };
            struct opt options[] = { { "min_spare", &min_spare }, { "max_spare", &max_spare } };
            void check() {
                if (min_spare > max_spare) { fprintf(stderr, "bad"); exit(1); }
            }
            "#,
        );
        assert_eq!(rels.len(), 1, "got {rels:?}");
        // min > max guards an exit: the constraint is min <= max, reported
        // in either orientation after normalisation.
        let ok = rels[0] == "\"min_spare\" <= \"max_spare\""
            || rels[0] == "\"max_spare\" >= \"min_spare\"";
        assert!(ok, "got {}", rels[0]);
    }

    #[test]
    fn transitive_through_intermediate() {
        // Figure 3(f): min/max word length related through `length`.
        let rels = rels_of(
            r#"
            int ft_min_word_len = 4;
            int ft_max_word_len = 84;
            struct opt { char* name; int* var; };
            struct opt options[] = {
                { "ft_min_word_len", &ft_min_word_len },
                { "ft_max_word_len", &ft_max_word_len }
            };
            void ft_get_word(int length) {
                if (length >= ft_min_word_len && length < ft_max_word_len) {
                    listen(0, length);
                }
            }
            "#,
        );
        assert!(!rels.is_empty(), "relation must be inferred");
        let r = &rels[0];
        assert!(
            (r.contains("ft_min_word_len") && r.contains("ft_max_word_len")),
            "got {r}"
        );
    }

    #[test]
    fn unrelated_params_produce_no_relation() {
        let rels = rels_of(
            r#"
            int a = 1;
            int b = 2;
            struct opt { char* name; int* var; };
            struct opt options[] = { { "a", &a }, { "b", &b } };
            void f() { sleep(a); sleep(b); }
            "#,
        );
        assert!(rels.is_empty());
    }

    #[test]
    fn duplicate_relations_are_deduped() {
        let rels = rels_of(
            r#"
            int lo = 1;
            int hi = 9;
            struct opt { char* name; int* var; };
            struct opt options[] = { { "lo", &lo }, { "hi", &hi } };
            void f() {
                if (lo > hi) { exit(1); }
            }
            void g() {
                if (lo > hi) { exit(1); }
            }
            "#,
        );
        assert_eq!(rels.len(), 1, "got {rels:?}");
    }
}
