//! Semantic-type inference (§2.2.2, Figures 3b and 3c).
//!
//! SPEX searches two patterns along a parameter's entire data-flow path:
//! (1) the parameter is passed to a known function call or data structure;
//! (2) the parameter is compared with, or assigned from, the return value
//! of a known call (e.g. `time()`).
//!
//! The search continues past value modifications because "the modification
//! seldom affects the semantic type" — a canonicalised file path is still a
//! file path. Constant multiplications on the path refine unit-carrying
//! types (a value scaled by 1024 before a byte-sized API is a KB
//! parameter).

use crate::apispec::ApiSpec;
use crate::constraint::{Constraint, ConstraintKind, SemType};
use crate::mapping::MappedParam;
use spex_dataflow::{AnalyzedModule, ModuleSummaries, ReturnTransfer, TaintResult};
use spex_ir::{Callee, ConstVal, FuncId, Instr, ValueId};
use spex_lang::ast::BinOp;

/// Infers semantic-type constraints for one parameter (possibly several
/// distinct types).
pub fn infer(
    am: &AnalyzedModule,
    summaries: &ModuleSummaries,
    spec: &ApiSpec,
    param: &MappedParam,
    taint: &TaintResult,
) -> Vec<Constraint> {
    let mut found: Vec<(SemType, u32, FuncId, spex_lang::diag::Span)> = Vec::new();
    for fid in taint.touched_functions() {
        let func = am.module.func(fid);
        for (_, _, instr, span) in func.iter_instrs() {
            match instr {
                Instr::Call { callee, args, .. } => {
                    for (pos, arg) in args.iter().enumerate() {
                        if !taint.is_tainted(fid, *arg) {
                            continue;
                        }
                        let sem = match callee {
                            Callee::Builtin(b) => spec.builtin_arg(*b, pos),
                            Callee::Func(f) => spec.custom_arg(&am.module.func(*f).name, pos),
                            Callee::Indirect(_) => None,
                        };
                        if let Some(sem) = sem {
                            let factor = scaling_factor(am, fid, *arg, taint);
                            let sem = ApiSpec::scale_unit(sem, factor);
                            let depth = taint.depth(fid, *arg).unwrap_or(u32::MAX);
                            found.push((sem, depth, fid, span));
                        }
                    }
                }
                // Pattern (2): comparison with the return value of a known
                // call.
                Instr::Bin { op, lhs, rhs, .. } if is_comparison(*op) => {
                    for (side, other) in [(lhs, rhs), (rhs, lhs)] {
                        if !taint.is_tainted(fid, *side) {
                            continue;
                        }
                        if let Some(sem) = known_ret_sem(am, summaries, spec, fid, *other) {
                            let depth = taint.depth(fid, *side).unwrap_or(u32::MAX);
                            found.push((sem, depth, fid, span));
                        }
                    }
                }
                _ => {}
            }
        }
    }
    // Deduplicate by semantic type, keeping the shallowest evidence.
    found.sort_by_key(|(_, d, _, _)| *d);
    let mut out: Vec<Constraint> = Vec::new();
    for (sem, _, fid, span) in found {
        if out
            .iter()
            .any(|c| c.kind == ConstraintKind::SemanticType(sem))
        {
            continue;
        }
        out.push(Constraint {
            param: param.name.clone(),
            kind: ConstraintKind::SemanticType(sem),
            in_function: am.module.func(fid).name.clone(),
            span,
        });
    }
    out
}

fn is_comparison(op: BinOp) -> bool {
    op.is_comparison()
}

/// The semantic type of a value defined by a known call (`time()` etc.),
/// either directly or through a summarised wrapper function whose return
/// value is the builtin's (`long now() { return time(0); }`).
fn known_ret_sem(
    am: &AnalyzedModule,
    summaries: &ModuleSummaries,
    spec: &ApiSpec,
    fid: FuncId,
    v: ValueId,
) -> Option<SemType> {
    let func = am.module.func(fid);
    match am.usedefs[fid.index()].def_instr(func, v)? {
        Instr::Call {
            callee: Callee::Builtin(b),
            ..
        } => spec.builtin_ret(*b),
        Instr::Call {
            callee: Callee::Func(g),
            ..
        } => match &summaries.get(*g).ret {
            Some(ReturnTransfer::Builtin(b)) => spec.builtin_ret(*b),
            _ => None,
        },
        Instr::Cast { operand, .. } => known_ret_sem(am, summaries, spec, fid, *operand),
        _ => None,
    }
}

/// Accumulated constant multiplication factor between the parameter's taint
/// source and `v` (walks backward through `Mul`-by-constant and casts).
fn scaling_factor(am: &AnalyzedModule, fid: FuncId, v: ValueId, taint: &TaintResult) -> i64 {
    let func = am.module.func(fid);
    let ud = &am.usedefs[fid.index()];
    let mut factor: i64 = 1;
    let mut cur = v;
    for _ in 0..16 {
        match ud.def_instr(func, cur) {
            Some(Instr::Bin {
                op: BinOp::Mul,
                lhs,
                rhs,
                ..
            }) => {
                let (c, next) = if let Some(c) = const_of(am, fid, *rhs) {
                    (c, *lhs)
                } else if let Some(c) = const_of(am, fid, *lhs) {
                    (c, *rhs)
                } else {
                    break;
                };
                if !taint.is_tainted(fid, next) {
                    break;
                }
                factor = factor.saturating_mul(c);
                cur = next;
            }
            Some(Instr::Cast { operand, .. }) => cur = *operand,
            _ => break,
        }
    }
    factor
}

fn const_of(am: &AnalyzedModule, fid: FuncId, v: ValueId) -> Option<i64> {
    let func = am.module.func(fid);
    match am.usedefs[fid.index()].def_instr(func, v)? {
        Instr::Const {
            val: ConstVal::Int(c),
            ..
        } => Some(*c),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use crate::annotations::Annotation;
    use crate::constraint::{ConstraintKind, SemType, SizeUnit, TimeUnit};
    use crate::infer::Spex;

    fn sems_of(src: &str, ann: &str, param: &str) -> Vec<SemType> {
        let p = spex_lang::parse_program(src).unwrap();
        let m = spex_ir::lower_program(&p).unwrap();
        let anns = Annotation::parse(ann).unwrap();
        let a = Spex::analyze(m, &anns);
        a.param(param)
            .unwrap()
            .constraints
            .iter()
            .filter_map(|c| match &c.kind {
                ConstraintKind::SemanticType(s) => Some(*s),
                _ => None,
            })
            .collect()
    }

    const TABLE_ANN: &str = "{ @STRUCT = options\n @PAR = [opt, 1]\n @VAR = [opt, 2] }";

    #[test]
    fn file_type_through_helper_call() {
        // Figure 3(b): ft_stopword_file flows through my_open into open().
        let sems = sems_of(
            r#"
            char* ft_stopword_file = "/etc/words";
            struct opt { char* name; char* var; };
            struct opt options[] = { { "ft_stopword_file", &ft_stopword_file } };
            int my_open(char* file_name, int flags) { return open(file_name, flags); }
            void init() { my_open(ft_stopword_file, 0); }
            "#,
            TABLE_ANN,
            "ft_stopword_file",
        );
        assert_eq!(sems, vec![SemType::FilePath]);
    }

    #[test]
    fn port_type_via_htons() {
        // Figure 3(c): udp_port reaches sin6_port via SetPort/htons.
        let sems = sems_of(
            r#"
            int udp_port = 3130;
            struct opt { char* name; int* var; };
            struct opt options[] = { { "udp_port", &udp_port } };
            void icpOpenPorts() {
                int p = udp_port;
                sockaddr_set_port(0, htons(p));
            }
            "#,
            TABLE_ANN,
            "udp_port",
        );
        assert!(sems.contains(&SemType::Port));
    }

    #[test]
    fn time_with_unit_scaling() {
        // sleep(minutes * 60): the parameter is in minutes.
        let sems = sems_of(
            r#"
            int idle_minutes = 5;
            struct opt { char* name; int* var; };
            struct opt options[] = { { "idle_minutes", &idle_minutes } };
            void idle() { sleep(idle_minutes * 60); }
            "#,
            TABLE_ANN,
            "idle_minutes",
        );
        assert_eq!(sems, vec![SemType::Time(TimeUnit::Min)]);
    }

    #[test]
    fn size_with_kb_scaling() {
        // Figure 6(b): MaxMemFree scaled by 1024 into a byte context.
        let sems = sems_of(
            r#"
            int max_mem_free = 2048;
            struct opt { char* name; int* var; };
            struct opt options[] = { { "MaxMemFree", &max_mem_free } };
            void apply() { malloc(max_mem_free * 1024); }
            "#,
            TABLE_ANN,
            "MaxMemFree",
        );
        assert_eq!(sems, vec![SemType::Size(SizeUnit::KB)]);
    }

    #[test]
    fn compare_with_time_return() {
        let sems = sems_of(
            r#"
            long deadline = 100;
            struct opt { char* name; long* var; };
            struct opt options[] = { { "deadline", &deadline } };
            void check() {
                if (deadline < time(0)) { exit(1); }
            }
            "#,
            TABLE_ANN,
            "deadline",
        );
        assert_eq!(sems, vec![SemType::Time(TimeUnit::Sec)]);
    }

    #[test]
    fn user_name_via_getpwnam() {
        let sems = sems_of(
            r#"
            char* run_as = "nobody";
            struct opt { char* name; char* var; };
            struct opt options[] = { { "user", &run_as } };
            void drop_priv() { getpwnam(run_as); }
            "#,
            TABLE_ANN,
            "user",
        );
        assert_eq!(sems, vec![SemType::UserName]);
    }

    #[test]
    fn no_semantic_type_without_known_api() {
        let sems = sems_of(
            r#"
            int counter = 1;
            struct opt { char* name; int* var; };
            struct opt options[] = { { "counter", &counter } };
            int bump() { return counter + 1; }
            "#,
            TABLE_ANN,
            "counter",
        );
        assert!(sems.is_empty());
    }
}
