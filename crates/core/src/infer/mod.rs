//! The constraint-inference pipeline (§2.2).
//!
//! SPEX scans the code twice. The first pass tracks each parameter's data
//! flow and infers per-parameter constraints (basic type, semantic type,
//! data range). The second pass works on the per-parameter slices to infer
//! multi-parameter constraints (control dependencies and value
//! relationships).

pub mod basic_type;
pub mod branch;
pub mod control_dep;
pub mod evidence;
pub mod range;
pub mod semantic_type;
pub mod value_rel;

use crate::annotations::Annotation;
use crate::apispec::ApiSpec;
use crate::constraint::Constraint;
use crate::mapping::{extract_mappings, MappedParam};
use spex_dataflow::{AnalyzedModule, TaintEngine, TaintResult};
use spex_ir::{FuncId, Module, ValueId};
use std::collections::HashMap;

pub use evidence::{Evidence, ResetEvidence, StringCmpEvidence};

/// Inference output for one parameter.
#[derive(Debug, Clone)]
pub struct ParamReport {
    /// The mapped parameter.
    pub param: MappedParam,
    /// The parameter's data-flow (its "program slice").
    pub taint: TaintResult,
    /// All constraints inferred for the parameter.
    pub constraints: Vec<Constraint>,
    /// Raw evidence consumed by the error-prone-design detectors (§3.2).
    pub evidence: Evidence,
}

/// The full analysis result for one system.
pub struct SpexAnalysis {
    /// The prepared module (SSA form plus analysis caches).
    pub am: AnalyzedModule,
    /// One report per configuration parameter, in mapping order.
    pub reports: Vec<ParamReport>,
}

impl SpexAnalysis {
    /// The report for a parameter by name.
    pub fn param(&self, name: &str) -> Option<&ParamReport> {
        self.reports.iter().find(|r| r.param.name == name)
    }

    /// All constraints across all parameters.
    pub fn all_constraints(&self) -> impl Iterator<Item = &Constraint> {
        self.reports.iter().flat_map(|r| r.constraints.iter())
    }

    /// Constraint counts by category (the columns of Table 11).
    pub fn counts_by_category(&self) -> HashMap<&'static str, usize> {
        let mut counts = HashMap::new();
        for c in self.all_constraints() {
            *counts.entry(c.kind.category()).or_insert(0) += 1;
        }
        counts
    }
}

/// Entry point of the SPEX analysis.
pub struct Spex;

impl Spex {
    /// Analyzes a module with the standard API registry.
    pub fn analyze(module: Module, anns: &[Annotation]) -> SpexAnalysis {
        Self::analyze_with_spec(module, anns, ApiSpec::standard())
    }

    /// Analyzes a module with a custom API registry (the paper imported
    /// Storage-A's proprietary APIs this way).
    pub fn analyze_with_spec(module: Module, anns: &[Annotation], spec: ApiSpec) -> SpexAnalysis {
        let am = AnalyzedModule::build(module);
        let params = extract_mappings(&am, anns).unwrap_or_default();
        let engine = TaintEngine::new(&am);
        let taints: Vec<TaintResult> = params.iter().map(|p| engine.run(&p.roots)).collect();

        // Reverse index: tainted value -> parameter indices, for the
        // multi-parameter passes.
        let vindex = build_value_index(&taints);

        let mut reports: Vec<ParamReport> = params
            .into_iter()
            .zip(taints.iter().cloned())
            .map(|(param, taint)| {
                let mut constraints = Vec::new();
                constraints.extend(basic_type::infer(&am, &param, &taint));
                constraints.extend(semantic_type::infer(&am, &spec, &param, &taint));
                constraints.extend(range::infer(&am, &param, &taint));
                let evidence = evidence::collect(&am, &param, &taint);
                ParamReport {
                    param,
                    taint,
                    constraints,
                    evidence,
                }
            })
            .collect();

        // Second pass: multi-parameter constraints over the slices.
        let names: Vec<String> = reports.iter().map(|r| r.param.name.clone()).collect();
        let deps = control_dep::infer(&am, &names, &taints, &vindex);
        for c in deps {
            if let crate::constraint::ConstraintKind::ControlDep(d) = &c.kind {
                if let Some(r) = reports.iter_mut().find(|r| r.param.name == d.dependent) {
                    r.constraints.push(c);
                }
            }
        }
        let rels = value_rel::infer(&am, &names, &vindex);
        for c in rels {
            if let crate::constraint::ConstraintKind::ValueRel(v) = &c.kind {
                if let Some(r) = reports.iter_mut().find(|r| r.param.name == v.lhs) {
                    r.constraints.push(c);
                }
            }
        }

        SpexAnalysis { am, reports }
    }
}

/// Maps every tainted SSA value to the parameters whose flow reaches it.
pub(crate) fn build_value_index(taints: &[TaintResult]) -> HashMap<(FuncId, ValueId), Vec<usize>> {
    let mut index: HashMap<(FuncId, ValueId), Vec<usize>> = HashMap::new();
    for (pi, t) in taints.iter().enumerate() {
        for key in t.values.keys() {
            index.entry(*key).or_default().push(pi);
        }
    }
    index
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::ConstraintKind;

    fn analyze(src: &str, ann: &str) -> SpexAnalysis {
        let p = spex_lang::parse_program(src).unwrap();
        let m = spex_ir::lower_program(&p).unwrap();
        let anns = Annotation::parse(ann).unwrap();
        Spex::analyze(m, &anns)
    }

    #[test]
    fn end_to_end_single_param() {
        let a = analyze(
            r#"
            int listener_threads = 16;
            struct opt { char* name; int* var; };
            struct opt options[] = { { "listener-threads", &listener_threads } };
            void startup() {
                if (listener_threads > 16) { exit(1); }
                listen(0, listener_threads);
            }
            "#,
            "{ @STRUCT = options\n @PAR = [opt, 1]\n @VAR = [opt, 2] }",
        );
        let r = a.param("listener-threads").unwrap();
        let cats: Vec<&str> = r.constraints.iter().map(|c| c.kind.category()).collect();
        assert!(cats.contains(&"basic-type"), "got {cats:?}");
        assert!(cats.contains(&"data-range"), "got {cats:?}");
    }

    #[test]
    fn counts_by_category_accumulate() {
        let a = analyze(
            r#"
            int t1 = 1;
            int t2 = 2;
            struct opt { char* name; int* var; };
            struct opt options[] = { { "a", &t1 }, { "b", &t2 } };
            void use() { sleep(t1); sleep(t2); }
            "#,
            "{ @STRUCT = options\n @PAR = [opt, 1]\n @VAR = [opt, 2] }",
        );
        let counts = a.counts_by_category();
        assert_eq!(counts.get("basic-type"), Some(&2));
        assert_eq!(counts.get("semantic-type"), Some(&2));
    }

    #[test]
    fn control_dependency_attributed_to_dependent() {
        // PostgreSQL fsync/commit_siblings pattern (Figure 3e).
        let a = analyze(
            r#"
            int fsync_on = 1;
            int commit_siblings = 5;
            struct opt { char* name; int* var; };
            struct opt options[] = {
                { "fsync", &fsync_on }, { "commit_siblings", &commit_siblings }
            };
            void commit() {
                if (fsync_on) {
                    int n = commit_siblings;
                    if (n > 0) { sleep(n); }
                }
            }
            "#,
            "{ @STRUCT = options\n @PAR = [opt, 1]\n @VAR = [opt, 2] }",
        );
        let r = a.param("commit_siblings").unwrap();
        let dep = r.constraints.iter().find_map(|c| match &c.kind {
            ConstraintKind::ControlDep(d) => Some(d),
            _ => None,
        });
        let dep = dep.expect("control dependency inferred");
        assert_eq!(dep.controller, "fsync");
        assert!(dep.confidence >= 0.75);
    }

    #[test]
    fn value_relationship_via_intermediate() {
        // MySQL ft_min/ft_max pattern (Figure 3f).
        let a = analyze(
            r#"
            int ft_min_word_len = 4;
            int ft_max_word_len = 84;
            struct opt { char* name; int* var; };
            struct opt options[] = {
                { "ft_min_word_len", &ft_min_word_len },
                { "ft_max_word_len", &ft_max_word_len }
            };
            void ft_get_word(int length) {
                if (length >= ft_min_word_len && length < ft_max_word_len) {
                    listen(0, length);
                }
            }
            "#,
            "{ @STRUCT = options\n @PAR = [opt, 1]\n @VAR = [opt, 2] }",
        );
        let rel = a.all_constraints().find_map(|c| match &c.kind {
            ConstraintKind::ValueRel(v) => Some(v.clone()),
            _ => None,
        });
        let rel = rel.expect("value relationship inferred");
        // min < max, possibly reported from either side.
        let readable = format!("{rel}");
        assert!(
            readable.contains("ft_min_word_len") && readable.contains("ft_max_word_len"),
            "got {readable}"
        );
    }
}
