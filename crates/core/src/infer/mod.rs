//! The constraint-inference pipeline (§2.2).
//!
//! SPEX scans the code twice. The first pass tracks each parameter's data
//! flow and infers per-parameter constraints (basic type, semantic type,
//! data range). The second pass works on the per-parameter slices to infer
//! multi-parameter constraints (control dependencies and value
//! relationships).

pub mod basic_type;
pub mod branch;
pub mod control_dep;
pub mod evidence;
pub mod range;
pub mod semantic_type;
pub mod value_rel;

use crate::annotations::Annotation;
use crate::apispec::ApiSpec;
use crate::constraint::Constraint;
use crate::mapping::{extract_mappings, MappedParam};
use spex_dataflow::{AnalyzedModule, TaintEngine, TaintResult};
use spex_ir::{FuncId, Module, ValueId};
use std::collections::{BTreeSet, HashMap};

pub use evidence::{Evidence, ResetEvidence, StringCmpEvidence};

/// Inference output for one parameter.
#[derive(Debug, Clone)]
pub struct ParamReport {
    /// The mapped parameter.
    pub param: MappedParam,
    /// The parameter's data-flow (its "program slice").
    pub taint: TaintResult,
    /// All constraints inferred for the parameter.
    pub constraints: Vec<Constraint>,
    /// Raw evidence consumed by the error-prone-design detectors (§3.2).
    pub evidence: Evidence,
    /// Set when a scoped analysis skipped this parameter's inference
    /// passes: the mapping and taint slice are fresh, but `constraints`
    /// and `evidence` are empty and previously persisted results remain
    /// authoritative.
    pub stale: bool,
}

/// How many times each inference pass ran during one analysis.
///
/// The per-parameter passes (basic type, semantic type, data range) count
/// one invocation per parameter they processed; the whole-module passes
/// (control dependency, value relationship) count one invocation per run.
/// Incremental callers use these to assert that a scoped re-analysis did
/// proportionally less work than a full one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassCounts {
    /// Basic-type pass invocations (per parameter).
    pub basic_type: usize,
    /// Semantic-type pass invocations (per parameter).
    pub semantic_type: usize,
    /// Data-range pass invocations (per parameter).
    pub range: usize,
    /// Control-dependency pass invocations (per run).
    pub control_dep: usize,
    /// Value-relationship pass invocations (per run).
    pub value_rel: usize,
}

impl PassCounts {
    /// Sum over all five passes.
    pub fn total(&self) -> usize {
        self.basic_type + self.semantic_type + self.range + self.control_dep + self.value_rel
    }

    /// Accumulates another run's counts.
    pub fn accumulate(&mut self, other: &PassCounts) {
        self.basic_type += other.basic_type;
        self.semantic_type += other.semantic_type;
        self.range += other.range;
        self.control_dep += other.control_dep;
        self.value_rel += other.value_rel;
    }
}

/// Limits a re-analysis to the parameters a code change could affect.
///
/// A parameter is *in scope* — and has its five inference passes re-run —
/// when its fresh taint slice touches any function in `functions`, or when
/// its name is listed in `params` (used for parameters whose *previous*
/// slice touched a function that no longer exists). Everything else is
/// returned as a [`stale`](ParamReport::stale) report with no constraints.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InferScope {
    /// Names of functions whose bodies changed (including added ones).
    pub functions: BTreeSet<String>,
    /// Parameter names forced into scope regardless of current data flow.
    pub params: BTreeSet<String>,
}

impl InferScope {
    /// A scope over a set of dirty function names.
    pub fn functions<I: IntoIterator<Item = S>, S: Into<String>>(names: I) -> InferScope {
        InferScope {
            functions: names.into_iter().map(Into::into).collect(),
            params: BTreeSet::new(),
        }
    }

    /// Additionally forces parameters into scope by name.
    pub fn with_params<I: IntoIterator<Item = S>, S: Into<String>>(mut self, names: I) -> Self {
        self.params.extend(names.into_iter().map(Into::into));
        self
    }
}

/// The full analysis result for one system.
pub struct SpexAnalysis {
    /// The prepared module (SSA form plus analysis caches).
    pub am: AnalyzedModule,
    /// One report per configuration parameter, in mapping order.
    pub reports: Vec<ParamReport>,
    /// How many times each inference pass ran (see [`PassCounts`]).
    pub passes: PassCounts,
}

impl SpexAnalysis {
    /// The report for a parameter by name.
    pub fn param(&self, name: &str) -> Option<&ParamReport> {
        self.reports.iter().find(|r| r.param.name == name)
    }

    /// All constraints across all parameters.
    pub fn all_constraints(&self) -> impl Iterator<Item = &Constraint> {
        self.reports.iter().flat_map(|r| r.constraints.iter())
    }

    /// Constraint counts by category (the columns of Table 11).
    pub fn counts_by_category(&self) -> HashMap<&'static str, usize> {
        let mut counts = HashMap::new();
        for c in self.all_constraints() {
            *counts.entry(c.kind.category()).or_insert(0) += 1;
        }
        counts
    }
}

/// Entry point of the SPEX analysis.
pub struct Spex;

impl Spex {
    /// Analyzes a module with the standard API registry.
    pub fn analyze(module: Module, anns: &[Annotation]) -> SpexAnalysis {
        Self::analyze_with_spec(module, anns, ApiSpec::standard())
    }

    /// Analyzes a module with a custom API registry (the paper imported
    /// Storage-A's proprietary APIs this way).
    pub fn analyze_with_spec(module: Module, anns: &[Annotation], spec: ApiSpec) -> SpexAnalysis {
        Self::analyze_scoped(module, anns, spec, None)
    }

    /// Analyzes a module, optionally restricted to a change [`InferScope`].
    ///
    /// With `scope = None` this is the classic full analysis. With a scope,
    /// mapping extraction and taint tracking still run for every parameter
    /// (they are cheap and needed to decide scope membership), but the five
    /// constraint-inference passes run only for in-scope parameters; the
    /// rest come back as [`stale`](ParamReport::stale) reports. Incremental
    /// callers merge the fresh constraints into a persisted database.
    pub fn analyze_scoped(
        module: Module,
        anns: &[Annotation],
        spec: ApiSpec,
        scope: Option<&InferScope>,
    ) -> SpexAnalysis {
        let am = AnalyzedModule::build(module);
        let params = extract_mappings(&am, anns).unwrap_or_default();
        let engine = TaintEngine::new(&am);
        let taints: Vec<TaintResult> = params.iter().map(|p| engine.run(&p.roots)).collect();

        // Reverse index: tainted value -> parameter indices, for the
        // multi-parameter passes.
        let vindex = build_value_index(&taints);

        let in_scope: Vec<bool> = match scope {
            None => vec![true; params.len()],
            Some(s) => {
                let dirty = expand_dirty_functions(&am, &s.functions);
                params
                    .iter()
                    .zip(taints.iter())
                    .map(|(p, t)| {
                        s.params.contains(&p.name)
                            || t.touched_functions().iter().any(|fid| dirty.contains(fid))
                    })
                    .collect()
            }
        };

        let mut passes = PassCounts::default();
        let mut reports: Vec<ParamReport> = params
            .into_iter()
            .zip(taints.iter().cloned())
            .zip(in_scope.iter().copied())
            .map(|((param, taint), live)| {
                if !live {
                    return ParamReport {
                        param,
                        taint,
                        constraints: Vec::new(),
                        evidence: Evidence::default(),
                        stale: true,
                    };
                }
                let mut constraints = Vec::new();
                passes.basic_type += 1;
                constraints.extend(basic_type::infer(&am, &param, &taint));
                passes.semantic_type += 1;
                constraints.extend(semantic_type::infer(&am, &spec, &param, &taint));
                passes.range += 1;
                constraints.extend(range::infer(&am, &param, &taint));
                let evidence = evidence::collect(&am, &param, &taint);
                ParamReport {
                    param,
                    taint,
                    constraints,
                    evidence,
                    stale: false,
                }
            })
            .collect();

        // Second pass: multi-parameter constraints over the slices. These
        // scan branch sites once for the whole module; constraints are
        // attributed to the dependent / left-hand parameter, and under a
        // scope only in-scope parameters receive fresh attributions.
        if in_scope.iter().any(|live| *live) {
            let names: Vec<String> = reports.iter().map(|r| r.param.name.clone()).collect();
            passes.control_dep += 1;
            let deps = control_dep::infer(&am, &names, &taints, &vindex);
            for c in deps {
                if let crate::constraint::ConstraintKind::ControlDep(d) = &c.kind {
                    if let Some(r) = reports
                        .iter_mut()
                        .find(|r| r.param.name == d.dependent && !r.stale)
                    {
                        r.constraints.push(c);
                    }
                }
            }
            passes.value_rel += 1;
            let rels = value_rel::infer(&am, &names, &vindex);
            for c in rels {
                if let crate::constraint::ConstraintKind::ValueRel(v) = &c.kind {
                    if let Some(r) = reports
                        .iter_mut()
                        .find(|r| r.param.name == v.lhs && !r.stale)
                    {
                        r.constraints.push(c);
                    }
                }
            }
        }

        SpexAnalysis {
            am,
            reports,
            passes,
        }
    }
}

/// Closes a set of dirty function names over the call graph: dirty
/// functions plus every transitive *callee* of one. Editing a caller can
/// change the guards its callees inherit (the control-dependency pass
/// propagates branch conditions caller → callee), so a parameter used only
/// inside a callee still needs re-inference when the caller changes.
fn expand_dirty_functions(
    am: &AnalyzedModule,
    names: &BTreeSet<String>,
) -> std::collections::HashSet<FuncId> {
    // Caller → callees adjacency (the call graph stores the reverse).
    let mut callees_of: HashMap<FuncId, Vec<FuncId>> = HashMap::new();
    for (callee, sites) in &am.callgraph.callers_of {
        for site in sites {
            callees_of.entry(site.caller).or_default().push(*callee);
        }
    }
    let mut dirty: std::collections::HashSet<FuncId> = am
        .module
        .functions
        .iter()
        .enumerate()
        .filter(|(_, f)| names.contains(&f.name))
        .map(|(i, _)| FuncId(i as u32))
        .collect();
    let mut work: Vec<FuncId> = dirty.iter().copied().collect();
    while let Some(f) = work.pop() {
        for callee in callees_of.get(&f).into_iter().flatten() {
            if dirty.insert(*callee) {
                work.push(*callee);
            }
        }
    }
    dirty
}

/// Maps every tainted SSA value to the parameters whose flow reaches it.
pub(crate) fn build_value_index(taints: &[TaintResult]) -> HashMap<(FuncId, ValueId), Vec<usize>> {
    let mut index: HashMap<(FuncId, ValueId), Vec<usize>> = HashMap::new();
    for (pi, t) in taints.iter().enumerate() {
        for key in t.values.keys() {
            index.entry(*key).or_default().push(pi);
        }
    }
    index
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::ConstraintKind;

    fn analyze(src: &str, ann: &str) -> SpexAnalysis {
        let p = spex_lang::parse_program(src).unwrap();
        let m = spex_ir::lower_program(&p).unwrap();
        let anns = Annotation::parse(ann).unwrap();
        Spex::analyze(m, &anns)
    }

    #[test]
    fn end_to_end_single_param() {
        let a = analyze(
            r#"
            int listener_threads = 16;
            struct opt { char* name; int* var; };
            struct opt options[] = { { "listener-threads", &listener_threads } };
            void startup() {
                if (listener_threads > 16) { exit(1); }
                listen(0, listener_threads);
            }
            "#,
            "{ @STRUCT = options\n @PAR = [opt, 1]\n @VAR = [opt, 2] }",
        );
        let r = a.param("listener-threads").unwrap();
        let cats: Vec<&str> = r.constraints.iter().map(|c| c.kind.category()).collect();
        assert!(cats.contains(&"basic-type"), "got {cats:?}");
        assert!(cats.contains(&"data-range"), "got {cats:?}");
    }

    #[test]
    fn counts_by_category_accumulate() {
        let a = analyze(
            r#"
            int t1 = 1;
            int t2 = 2;
            struct opt { char* name; int* var; };
            struct opt options[] = { { "a", &t1 }, { "b", &t2 } };
            void use() { sleep(t1); sleep(t2); }
            "#,
            "{ @STRUCT = options\n @PAR = [opt, 1]\n @VAR = [opt, 2] }",
        );
        let counts = a.counts_by_category();
        assert_eq!(counts.get("basic-type"), Some(&2));
        assert_eq!(counts.get("semantic-type"), Some(&2));
    }

    #[test]
    fn control_dependency_attributed_to_dependent() {
        // PostgreSQL fsync/commit_siblings pattern (Figure 3e).
        let a = analyze(
            r#"
            int fsync_on = 1;
            int commit_siblings = 5;
            struct opt { char* name; int* var; };
            struct opt options[] = {
                { "fsync", &fsync_on }, { "commit_siblings", &commit_siblings }
            };
            void commit() {
                if (fsync_on) {
                    int n = commit_siblings;
                    if (n > 0) { sleep(n); }
                }
            }
            "#,
            "{ @STRUCT = options\n @PAR = [opt, 1]\n @VAR = [opt, 2] }",
        );
        let r = a.param("commit_siblings").unwrap();
        let dep = r.constraints.iter().find_map(|c| match &c.kind {
            ConstraintKind::ControlDep(d) => Some(d),
            _ => None,
        });
        let dep = dep.expect("control dependency inferred");
        assert_eq!(dep.controller, "fsync");
        assert!(dep.confidence >= 0.75);
    }

    #[test]
    fn value_relationship_via_intermediate() {
        // MySQL ft_min/ft_max pattern (Figure 3f).
        let a = analyze(
            r#"
            int ft_min_word_len = 4;
            int ft_max_word_len = 84;
            struct opt { char* name; int* var; };
            struct opt options[] = {
                { "ft_min_word_len", &ft_min_word_len },
                { "ft_max_word_len", &ft_max_word_len }
            };
            void ft_get_word(int length) {
                if (length >= ft_min_word_len && length < ft_max_word_len) {
                    listen(0, length);
                }
            }
            "#,
            "{ @STRUCT = options\n @PAR = [opt, 1]\n @VAR = [opt, 2] }",
        );
        let rel = a.all_constraints().find_map(|c| match &c.kind {
            ConstraintKind::ValueRel(v) => Some(v.clone()),
            _ => None,
        });
        let rel = rel.expect("value relationship inferred");
        // min < max, possibly reported from either side.
        let readable = format!("{rel}");
        assert!(
            readable.contains("ft_min_word_len") && readable.contains("ft_max_word_len"),
            "got {readable}"
        );
    }
}
