//! The constraint-inference pipeline (§2.2).
//!
//! SPEX scans the code twice. The first pass tracks each parameter's data
//! flow and infers per-parameter constraints (basic type, semantic type,
//! data range). The second pass works on the per-parameter slices to infer
//! multi-parameter constraints (control dependencies and value
//! relationships).

pub mod basic_type;
pub mod branch;
pub mod control_dep;
pub mod evidence;
pub mod range;
pub mod semantic_type;
pub mod value_rel;

use crate::annotations::Annotation;
use crate::apispec::ApiSpec;
use crate::constraint::Constraint;
use crate::mapping::{
    extract_annotation, mapping_relevant, merge_mappings, MappedParam, MappingError,
};
use spex_dataflow::{AnalyzedModule, MemLoc, ModuleSummaries, TaintEngine, TaintResult, TaintRoot};
use spex_ir::{Callee, FuncId, Instr, Module, ValueId};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

pub use evidence::{Evidence, ResetEvidence, StringCmpEvidence};

/// Inference output for one parameter.
#[derive(Debug, Clone)]
pub struct ParamReport {
    /// The mapped parameter.
    pub param: MappedParam,
    /// The parameter's data-flow (its "program slice"), shared with the
    /// pass-level cache — an unchanged slice is reused across analysis
    /// generations by reference-count bump.
    pub taint: Arc<TaintResult>,
    /// All constraints inferred for the parameter.
    pub constraints: Vec<Constraint>,
    /// Raw evidence consumed by the error-prone-design detectors (§3.2).
    pub evidence: Evidence,
    /// Set when a scoped analysis skipped this parameter's inference
    /// passes: the mapping and taint slice are fresh, but `constraints`
    /// and `evidence` are empty and previously persisted results remain
    /// authoritative.
    pub stale: bool,
}

/// How many times each inference pass ran during one analysis, and how the
/// pass-level cache fared.
///
/// The per-parameter passes (basic type, semantic type, data range) count
/// one invocation per parameter they processed; the whole-module passes
/// (control dependency, value relationship) count one invocation per run.
/// The cache counters record, for the expensive intermediate artifacts
/// (config-mapping extraction and per-parameter taint slices), how many
/// were recomputed versus served from a [`PassCache`]. Incremental callers
/// use these to assert that a scoped re-analysis did proportionally less
/// work than a full one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassCounts {
    /// Basic-type pass invocations (per parameter).
    pub basic_type: usize,
    /// Semantic-type pass invocations (per parameter).
    pub semantic_type: usize,
    /// Data-range pass invocations (per parameter).
    pub range: usize,
    /// Control-dependency pass invocations (per run).
    pub control_dep: usize,
    /// Value-relationship pass invocations (per run).
    pub value_rel: usize,
    /// Mapping extractions that actually ran (per analysis).
    pub mapping_extractions: usize,
    /// Mapping extractions answered from the cache (per analysis).
    pub mapping_cache_hits: usize,
    /// Taint-slice computations that actually ran (per parameter).
    pub taint_runs: usize,
    /// Taint slices reused from the cache (per parameter).
    pub taint_cache_hits: usize,
    /// Reaction classifications that actually ran (per parameter). The
    /// reaction pass lives downstream in `spex-react`; the workspace layer
    /// accounts for it here so one struct carries the whole story.
    pub react_runs: usize,
    /// Reaction findings reused for stale slices (per parameter).
    pub react_cache_hits: usize,
    /// Function summaries (re)computed (per function).
    pub summary_runs: usize,
    /// Function summaries reused from the cache (per function).
    pub summary_cache_hits: usize,
}

impl PassCounts {
    /// Sum over the five inference passes (cache counters excluded).
    pub fn total(&self) -> usize {
        self.basic_type + self.semantic_type + self.range + self.control_dep + self.value_rel
    }

    /// Fraction of cacheable artifacts (mappings + taint slices) served
    /// from the cache, or `None` when nothing cacheable was requested.
    pub fn cached_fraction(&self) -> Option<f64> {
        let hits = self.mapping_cache_hits + self.taint_cache_hits;
        let total = hits + self.mapping_extractions + self.taint_runs;
        (total > 0).then(|| hits as f64 / total as f64)
    }

    /// Publishes the counts into the installed telemetry recorder (no-op
    /// when telemetry is disabled): one `infer.pass.*` counter per
    /// inference pass and the `infer.cache.{mapping,taint}.{hits,misses}`
    /// cache counters.
    pub fn record_metrics(&self) {
        if !spex_obs::enabled() {
            return;
        }
        for (name, value) in [
            ("infer.pass.basic_type", self.basic_type),
            ("infer.pass.semantic_type", self.semantic_type),
            ("infer.pass.range", self.range),
            ("infer.pass.control_dep", self.control_dep),
            ("infer.pass.value_rel", self.value_rel),
            ("infer.cache.mapping.hits", self.mapping_cache_hits),
            ("infer.cache.mapping.misses", self.mapping_extractions),
            ("infer.cache.taint.hits", self.taint_cache_hits),
            ("infer.cache.taint.misses", self.taint_runs),
            ("react.cache.hits", self.react_cache_hits),
            ("react.cache.misses", self.react_runs),
            ("infer.summary.hits", self.summary_cache_hits),
            ("infer.summary.runs", self.summary_runs),
        ] {
            if value > 0 {
                spex_obs::counter(name, value as u64);
            }
        }
    }

    /// Accumulates another run's counts.
    pub fn accumulate(&mut self, other: &PassCounts) {
        self.basic_type += other.basic_type;
        self.semantic_type += other.semantic_type;
        self.range += other.range;
        self.control_dep += other.control_dep;
        self.value_rel += other.value_rel;
        self.mapping_extractions += other.mapping_extractions;
        self.mapping_cache_hits += other.mapping_cache_hits;
        self.taint_runs += other.taint_runs;
        self.taint_cache_hits += other.taint_cache_hits;
        self.react_runs += other.react_runs;
        self.react_cache_hits += other.react_cache_hits;
        self.summary_runs += other.summary_runs;
        self.summary_cache_hits += other.summary_cache_hits;
    }
}

/// Limits a re-analysis to the parameters a code change could affect.
///
/// A parameter is *in scope* — and has its five inference passes re-run —
/// when its fresh taint slice touches any function in `functions`, or when
/// its name is listed in `params` (used for parameters whose *previous*
/// slice touched a function that no longer exists). Everything else is
/// returned as a [`stale`](ParamReport::stale) report with no constraints.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InferScope {
    /// Names of functions whose bodies changed (including added ones).
    pub functions: BTreeSet<String>,
    /// Parameter names forced into scope regardless of current data flow.
    pub params: BTreeSet<String>,
}

impl InferScope {
    /// A scope over a set of dirty function names.
    pub fn functions<I: IntoIterator<Item = S>, S: Into<String>>(names: I) -> InferScope {
        InferScope {
            functions: names.into_iter().map(Into::into).collect(),
            params: BTreeSet::new(),
        }
    }

    /// Additionally forces parameters into scope by name.
    pub fn with_params<I: IntoIterator<Item = S>, S: Into<String>>(mut self, names: I) -> Self {
        self.params.extend(names.into_iter().map(Into::into));
        self
    }
}

/// The full analysis result for one system.
pub struct SpexAnalysis {
    /// The prepared module (SSA form plus analysis caches), shared with
    /// the [`PassCache`] so incremental re-analyses reuse per-function
    /// state instead of rebuilding it.
    pub am: Arc<AnalyzedModule>,
    /// One report per configuration parameter, in mapping order.
    pub reports: Vec<ParamReport>,
    /// Interprocedural function summaries the passes consumed, shared with
    /// the [`PassCache`] and with the downstream reaction analysis.
    pub summaries: Arc<ModuleSummaries>,
    /// How many times each inference pass ran (see [`PassCounts`]).
    pub passes: PassCounts,
}

impl SpexAnalysis {
    /// The report for a parameter by name.
    pub fn param(&self, name: &str) -> Option<&ParamReport> {
        self.reports.iter().find(|r| r.param.name == name)
    }

    /// All constraints across all parameters.
    pub fn all_constraints(&self) -> impl Iterator<Item = &Constraint> {
        self.reports.iter().flat_map(|r| r.constraints.iter())
    }

    /// Constraint counts by category (the columns of Table 11).
    pub fn counts_by_category(&self) -> HashMap<&'static str, usize> {
        let mut counts = HashMap::new();
        for c in self.all_constraints() {
            *counts.entry(c.kind.category()).or_insert(0) += 1;
        }
        counts
    }
}

/// The fingerprint-keyed cache for the expensive intermediate artifacts
/// of one module's analysis: the prepared [`AnalyzedModule`] (SSA form,
/// CFGs, dominators, use-def chains), the config-mapping extraction
/// result, and the per-parameter taint slices.
///
/// One cache belongs to one module lineage. [`Spex::analyze_cached`]
/// consults it when given the set of dirty function names and refills it
/// after every run, so a warm re-analysis after a small edit recomputes
/// only the artifacts the edit could have touched and reuses the rest by
/// `Arc` bump. Dropping the cache (or passing `dirty = None`) degrades
/// gracefully to a full analysis.
#[derive(Default)]
pub struct PassCache {
    state: Option<CacheState>,
}

impl PassCache {
    /// Forgets everything (e.g. after an annotation or header change the
    /// caller knows invalidates all artifacts).
    pub fn clear(&mut self) {
        self.state = None;
    }

    /// Whether the cache currently holds a prior analysis generation.
    pub fn is_warm(&self) -> bool {
        self.state.is_some()
    }
}

struct CacheState {
    /// The previous generation's prepared module.
    am: Arc<AnalyzedModule>,
    /// Fingerprint of the annotations the artifacts were extracted under.
    ann_fp: u64,
    /// Cached per-annotation extraction results, aligned with the
    /// annotation set the fingerprint covers (`Err` is cached too, so a
    /// failing annotation is not re-extracted every warm run).
    ann_mappings: Vec<Arc<Result<Vec<MappedParam>, MappingError>>>,
    /// Cached per-function interprocedural summaries.
    summaries: Arc<ModuleSummaries>,
    /// Cached per-parameter slices, by parameter name.
    slices: HashMap<String, CachedSlice>,
}

/// One parameter's cached taint slice plus the summaries its validity
/// checks need (see [`slice_survives_edit`]).
struct CachedSlice {
    /// The roots the slice was computed from (id-exact; any change in the
    /// fresh mapping misses the cache).
    roots: Vec<TaintRoot>,
    /// The slice itself.
    taint: Arc<TaintResult>,
    /// Names of the functions the slice touches.
    touched: BTreeSet<String>,
    /// Parameter counts of the touched functions (possible arities for
    /// indirect calls *into* the slice from edited code).
    touched_arities: BTreeSet<usize>,
    /// Arities of indirect calls *made by* touched functions (an edited
    /// function with a matching parameter count could become a callee).
    indirect_arities: BTreeSet<usize>,
}

/// What an edited (or added) function could do to existing slices:
/// everything a taint run could newly traverse through it.
struct DirtyFnSummary {
    /// Abstract locations the function loads from.
    loads: Vec<MemLoc>,
    /// Names of functions it calls directly.
    callees: BTreeSet<String>,
    /// Arities of indirect calls it makes.
    indirect_arities: BTreeSet<usize>,
    /// Arities of functions whose address it takes (each becomes a new
    /// potential indirect-call target).
    funcref_arities: BTreeSet<usize>,
    /// Its own parameter count (it may itself be an indirect-call target).
    param_count: usize,
}

fn summarize_dirty_fn(am: &AnalyzedModule, fid: FuncId) -> DirtyFnSummary {
    let f = am.module.func(fid);
    let mut s = DirtyFnSummary {
        loads: Vec::new(),
        callees: BTreeSet::new(),
        indirect_arities: BTreeSet::new(),
        funcref_arities: BTreeSet::new(),
        param_count: f.params.len(),
    };
    for (_, _, instr, _) in f.iter_instrs() {
        match instr {
            Instr::Load { place, .. } => {
                if let Some(loc) = MemLoc::from_place(fid, place) {
                    s.loads.push(loc);
                }
            }
            Instr::Call { callee, args, .. } => match callee {
                Callee::Func(t) => {
                    s.callees.insert(am.module.func(*t).name.clone());
                }
                Callee::Indirect(_) => {
                    s.indirect_arities.insert(args.len());
                }
                Callee::Builtin(_) => {}
            },
            Instr::Const {
                val: spex_ir::ConstVal::FuncRef(t),
                ..
            } => {
                s.funcref_arities.insert(am.module.func(*t).params.len());
            }
            _ => {}
        }
    }
    s
}

/// Whether a cached slice is still exact after an edit: its roots are
/// unchanged, none of its touched functions changed, and no edited
/// function opens a new channel into it. Taint enters a function only by
/// (a) loading memory the slice taints, (b) receiving a tainted argument
/// from a touched function (impossible here — touched functions are
/// unchanged, so their call sites are too), (c) receiving a tainted return
/// by calling into a touched function, directly or through a function
/// pointer, or (d) becoming an indirect-call target of a touched
/// function. Each channel has a matching conservative check below.
fn slice_survives_edit(
    cached: &CachedSlice,
    roots: &[TaintRoot],
    dirty: &BTreeSet<String>,
    summaries: &[DirtyFnSummary],
) -> bool {
    if cached.roots != roots {
        return false;
    }
    if cached.touched.iter().any(|n| dirty.contains(n)) {
        return false;
    }
    summaries.iter().all(|s| {
        s.callees.is_disjoint(&cached.touched)
            && s.indirect_arities.is_disjoint(&cached.touched_arities)
            && !cached.indirect_arities.contains(&s.param_count)
            && s.funcref_arities.is_disjoint(&cached.indirect_arities)
            && !s
                .loads
                .iter()
                .any(|l| cached.taint.mem.keys().any(|m| m.may_alias(l)))
    })
}

/// Builds the [`CachedSlice`] bookkeeping for a freshly computed (or
/// carried-over) slice.
fn cache_slice(am: &AnalyzedModule, roots: &[TaintRoot], taint: &Arc<TaintResult>) -> CachedSlice {
    let mut touched = BTreeSet::new();
    let mut touched_arities = BTreeSet::new();
    let mut indirect_arities = BTreeSet::new();
    for fid in taint.touched_functions() {
        let f = am.module.func(fid);
        touched.insert(f.name.clone());
        touched_arities.insert(f.params.len());
        for (_, _, instr, _) in f.iter_instrs() {
            if let Instr::Call {
                callee: Callee::Indirect(_),
                args,
                ..
            } = instr
            {
                indirect_arities.insert(args.len());
            }
        }
    }
    CachedSlice {
        roots: roots.to_vec(),
        taint: Arc::clone(taint),
        touched,
        touched_arities,
        indirect_arities,
    }
}

/// Deterministic fingerprint of an annotation set (defensive cache key:
/// callers are expected to clear the cache on annotation changes anyway).
fn ann_fingerprint(anns: &[Annotation]) -> u64 {
    crate::fingerprint::fnv1a(format!("{anns:?}").as_bytes())
}

/// Whether the cached generation's id space is compatible with `module`:
/// same globals (name and order) and the old function table a prefix of
/// the new one, so every `FuncId`/`GlobalId` embedded in cached artifacts
/// still resolves to the same entity.
fn ids_stable(prev: &Module, next: &Module) -> bool {
    prev.functions.len() <= next.functions.len()
        && prev
            .functions
            .iter()
            .zip(&next.functions)
            .all(|(a, b)| a.name == b.name)
        && prev.globals.len() == next.globals.len()
        && prev
            .globals
            .iter()
            .zip(&next.globals)
            .all(|(a, b)| a.name == b.name)
}

/// Entry point of the SPEX analysis.
pub struct Spex;

impl Spex {
    /// Analyzes a module with the standard API registry.
    pub fn analyze(module: Module, anns: &[Annotation]) -> SpexAnalysis {
        Self::analyze_with_spec(module, anns, ApiSpec::standard())
    }

    /// Analyzes a module with a custom API registry (the paper imported
    /// Storage-A's proprietary APIs this way).
    pub fn analyze_with_spec(module: Module, anns: &[Annotation], spec: ApiSpec) -> SpexAnalysis {
        Self::analyze_scoped(&module, anns, spec, None)
    }

    /// Analyzes a borrowed module, optionally restricted to a change
    /// [`InferScope`]. The module is never deep-cloned: function bodies
    /// are promoted to SSA straight off the reference.
    ///
    /// With `scope = None` this is the classic full analysis. With a scope,
    /// mapping extraction and taint tracking still run for every parameter
    /// (they are needed to decide scope membership), but the five
    /// constraint-inference passes run only for in-scope parameters; the
    /// rest come back as [`stale`](ParamReport::stale) reports. Incremental
    /// callers merge the fresh constraints into a persisted database.
    pub fn analyze_scoped(
        module: &Module,
        anns: &[Annotation],
        spec: ApiSpec,
        scope: Option<&InferScope>,
    ) -> SpexAnalysis {
        Self::analyze_cached(module, anns, spec, scope, None, &mut PassCache::default())
    }

    /// Like [`analyze_scoped`](Spex::analyze_scoped), but consulting and
    /// refilling a [`PassCache`] across calls.
    ///
    /// `dirty` names every function whose lowered IR changed since the
    /// cache was last filled — changed, added *and* removed ones (the
    /// fingerprint diff of the workspace). When it is `Some` and the
    /// module header (globals, structs, enum constants) is unchanged, the
    /// prepared module is incrementally rebuilt, the mapping extraction is
    /// reused unless a dirty function could affect it, and each
    /// parameter's taint slice is reused unless the edit could reach it —
    /// see [`PassCounts`] for the hit/miss accounting. With `dirty = None`
    /// (or a cold cache) everything is recomputed and the cache seeded.
    pub fn analyze_cached(
        module: &Module,
        anns: &[Annotation],
        spec: ApiSpec,
        scope: Option<&InferScope>,
        dirty: Option<&BTreeSet<String>>,
        cache: &mut PassCache,
    ) -> SpexAnalysis {
        Self::analyze_cached_threaded(module, anns, spec, scope, dirty, cache, 1)
    }

    /// Like [`analyze_cached`](Spex::analyze_cached), with the
    /// per-parameter inference passes fanned across up to `threads`
    /// scoped workers (the `spex-pool` primitive).
    ///
    /// The output is **byte-identical to the serial run** at every thread
    /// count: results come back in parameter index order, the pass
    /// counters are derived from the in-scope set rather than loop order,
    /// and the multi-parameter passes (control dependencies, value
    /// relationships) stay serial — they scan branch sites once for the
    /// whole module and their merge order is what makes
    /// [`SpexAnalysis::reports`] deterministic.
    #[allow(clippy::too_many_arguments)]
    pub fn analyze_cached_threaded(
        module: &Module,
        anns: &[Annotation],
        spec: ApiSpec,
        scope: Option<&InferScope>,
        dirty: Option<&BTreeSet<String>>,
        cache: &mut PassCache,
        threads: usize,
    ) -> SpexAnalysis {
        let mut passes = PassCounts::default();
        let ann_fp = ann_fingerprint(anns);

        // Reuse the previous generation's per-function state when the id
        // space is compatible; otherwise run cold.
        let warm = matches!(
            (&cache.state, dirty),
            (Some(state), Some(_))
                if state.ann_fp == ann_fp && ids_stable(&state.am.module, module)
        );
        let am: Arc<AnalyzedModule> = if warm {
            let state = cache.state.as_ref().expect("warm implies state");
            let dirty = dirty.expect("warm implies dirty");
            Arc::new(AnalyzedModule::rebuild(&state.am, module, &|name| {
                dirty.contains(name)
            }))
        } else {
            cache.state = None;
            Arc::new(AnalyzedModule::build_ref(module))
        };

        // Mapping extraction, cached per annotation: one annotation's
        // cached result stays valid unless a dirty function — in its old
        // or new form — is relevant to *that* annotation, so an edit to a
        // parser named by one annotation no longer re-extracts its
        // neighbours. A module without annotations counts one trivial
        // extraction, preserving the historical accounting shape.
        let mut ann_mappings: Vec<Arc<Result<Vec<MappedParam>, MappingError>>> =
            Vec::with_capacity(anns.len());
        for (j, ann) in anns.iter().enumerate() {
            let one = std::slice::from_ref(ann);
            let cached = if warm {
                let state = cache.state.as_ref().expect("warm implies state");
                let dirty = dirty.expect("warm implies dirty");
                let unaffected = dirty.iter().all(|name| {
                    let old_ok = match state.am.module.function_by_name(name) {
                        Some(fid) => !mapping_relevant(&state.am, fid, one),
                        None => true,
                    };
                    let new_ok = match am.module.function_by_name(name) {
                        Some(fid) => !mapping_relevant(&am, fid, one),
                        None => true,
                    };
                    old_ok && new_ok
                });
                if unaffected {
                    state.ann_mappings.get(j).cloned()
                } else {
                    None
                }
            } else {
                None
            };
            match cached {
                Some(m) => {
                    passes.mapping_cache_hits += 1;
                    ann_mappings.push(m);
                }
                None => {
                    passes.mapping_extractions += 1;
                    let _span = spex_obs::span("infer.mapping");
                    ann_mappings.push(Arc::new(extract_annotation(&am, ann)));
                }
            }
        }
        if anns.is_empty() {
            if warm {
                passes.mapping_cache_hits += 1;
            } else {
                passes.mapping_extractions += 1;
            }
        }
        // Any failing annotation empties the whole mapping, exactly as the
        // all-at-once extraction did.
        let params: Arc<Vec<MappedParam>> = if ann_mappings.iter().any(|r| r.is_err()) {
            Arc::new(Vec::new())
        } else {
            Arc::new(merge_mappings(ann_mappings.iter().map(|r| {
                r.as_ref().as_ref().expect("errors filtered above").clone()
            })))
        };

        // Interprocedural function summaries, SCC-granular: a dirty
        // function invalidates exactly its component plus the components
        // that (transitively) call into it; every other component is
        // reused from the previous generation by clone.
        let module_summaries: Arc<ModuleSummaries> = {
            let _span = spex_obs::span("infer.summary");
            let prev = if warm {
                let state = cache.state.as_ref().expect("warm implies state");
                let dirty = dirty.expect("warm implies dirty");
                let dirty_fns: Vec<bool> = am
                    .module
                    .functions
                    .iter()
                    .map(|f| dirty.contains(&f.name))
                    .collect();
                Some((Arc::clone(&state.summaries), dirty_fns))
            } else {
                None
            };
            let (s, stats) = ModuleSummaries::compute_incremental(
                &am,
                prev.as_ref().map(|(p, d)| (p.as_ref(), d.as_slice())),
            );
            passes.summary_runs += stats.runs;
            passes.summary_cache_hits += stats.hits;
            Arc::new(s)
        };

        // Taint slices: reuse every slice the edit provably cannot reach.
        // A dirty function is summarized in both its old and its new form
        // (mirroring the mapping check above): either could hold a channel
        // into a cached slice — a removed channel (say, a dropped function
        // pointer that used to feed a touched indirect call) shrinks the
        // recomputed slice just as surely as an added one grows it.
        let mut engine: Option<TaintEngine> = None;
        let summaries: Vec<DirtyFnSummary> = if warm {
            let state = cache.state.as_ref().expect("warm implies state");
            dirty
                .expect("warm implies dirty")
                .iter()
                .flat_map(|name| {
                    let old = state
                        .am
                        .module
                        .function_by_name(name)
                        .map(|fid| summarize_dirty_fn(&state.am, fid));
                    let new = am
                        .module
                        .function_by_name(name)
                        .map(|fid| summarize_dirty_fn(&am, fid));
                    old.into_iter().chain(new)
                })
                .collect()
        } else {
            Vec::new()
        };
        let mut slice_hit = vec![false; params.len()];
        let taints: Vec<Arc<TaintResult>> = params
            .iter()
            .zip(&mut slice_hit)
            .map(|(p, hit)| {
                if warm {
                    let state = cache.state.as_ref().expect("warm implies state");
                    let dirty = dirty.expect("warm implies dirty");
                    if let Some(cached) = state.slices.get(&p.name) {
                        if slice_survives_edit(cached, &p.roots, dirty, &summaries) {
                            passes.taint_cache_hits += 1;
                            *hit = true;
                            return Arc::clone(&cached.taint);
                        }
                    }
                }
                passes.taint_runs += 1;
                let engine = engine.get_or_insert_with(|| TaintEngine::new(&am));
                let _span = spex_obs::span!("infer.taint", param = p.name);
                Arc::new(engine.run(&p.roots))
            })
            .collect();
        drop(engine);

        // Refill the cache for the next generation. A hit slice keeps its
        // bookkeeping entry as-is — its touched functions are unchanged by
        // construction, so re-deriving the summaries would walk the same
        // instructions to the same answer; only recomputed slices are
        // (re)summarized.
        let mut old_slices = cache.state.take().map(|s| s.slices).unwrap_or_default();
        cache.state = Some(CacheState {
            am: Arc::clone(&am),
            ann_fp,
            ann_mappings,
            summaries: Arc::clone(&module_summaries),
            slices: params
                .iter()
                .zip(&taints)
                .zip(&slice_hit)
                .map(|((p, t), &hit)| {
                    let entry = if hit {
                        old_slices
                            .remove(&p.name)
                            .expect("a cache hit implies a cached slice")
                    } else {
                        cache_slice(&am, &p.roots, t)
                    };
                    (p.name.clone(), entry)
                })
                .collect(),
        });

        // A slice that missed the cache may differ from its previous
        // generation — including slices that *shrank*, whose touched set no
        // longer intersects the dirty functions (say, an edit removed the
        // only function-pointer wiring a bound-checking callee in). Scope
        // membership alone would leave such a parameter stale with its
        // outdated constraints, so every recomputed slice forces its
        // parameter into scope.
        let recomputed = dirty
            .is_some()
            .then(|| slice_hit.iter().map(|&h| !h).collect());

        Self::infer_from_slices(
            am,
            params,
            taints,
            module_summaries,
            spec,
            scope,
            recomputed,
            passes,
            threads,
        )
    }

    /// The five inference passes over prepared slices (shared tail of the
    /// cached and uncached entry points). `recomputed` marks parameters
    /// whose slice was not served from the pass cache (cached runs only);
    /// they are inferred even when outside `scope`.
    ///
    /// The per-parameter passes fan across up to `threads` pool workers
    /// whenever more than one parameter is live. Routing on the *workload*
    /// rather than the thread count keeps the telemetry count signature
    /// thread-count-independent: a warm single-dirty-parameter reanalyze
    /// never touches the pool, a cold run always does, at any `threads`.
    #[allow(clippy::too_many_arguments)]
    fn infer_from_slices(
        am: Arc<AnalyzedModule>,
        params: Arc<Vec<MappedParam>>,
        taints: Vec<Arc<TaintResult>>,
        summaries: Arc<ModuleSummaries>,
        spec: ApiSpec,
        scope: Option<&InferScope>,
        recomputed: Option<Vec<bool>>,
        mut passes: PassCounts,
        threads: usize,
    ) -> SpexAnalysis {
        // Reverse index: tainted value -> parameter indices, for the
        // multi-parameter passes.
        let vindex = build_value_index(&taints);

        let in_scope: Vec<bool> = match scope {
            None => vec![true; params.len()],
            Some(s) => {
                let dirty = expand_dirty_functions(&am, &s.functions);
                params
                    .iter()
                    .zip(taints.iter())
                    .enumerate()
                    .map(|(i, (p, t))| {
                        s.params.contains(&p.name)
                            || t.touched_functions().iter().any(|fid| dirty.contains(fid))
                            || recomputed.as_ref().is_some_and(|r| r[i])
                    })
                    .collect()
            }
        };

        // First pass group: the three per-parameter passes plus evidence
        // collection are embarrassingly parallel — each job reads the
        // shared `AnalyzedModule` and its own slice, nothing else. Results
        // land by index, so the report order (and therefore every
        // downstream serialization) is byte-identical to the serial run.
        let live_total = in_scope.iter().filter(|&&live| live).count();
        let infer_one = |i: usize| -> ParamReport {
            let param = params[i].clone();
            let taint = Arc::clone(&taints[i]);
            if !in_scope[i] {
                return ParamReport {
                    param,
                    taint,
                    constraints: Vec::new(),
                    evidence: Evidence::default(),
                    stale: true,
                };
            }
            let _param_span = spex_obs::span!("infer.param", name = param.name);
            let mut constraints = Vec::new();
            {
                let _span = spex_obs::span("infer.basic_type");
                constraints.extend(basic_type::infer(&am, &summaries, &param, &taint));
            }
            {
                let _span = spex_obs::span("infer.semantic_type");
                constraints.extend(semantic_type::infer(&am, &summaries, &spec, &param, &taint));
            }
            {
                let _span = spex_obs::span("infer.range");
                constraints.extend(range::infer(&am, &summaries, &param, &taint));
            }
            let evidence = evidence::collect(&am, &param, &taint);
            ParamReport {
                param,
                taint,
                constraints,
                evidence,
                stale: false,
            }
        };
        let mut reports: Vec<ParamReport> = if live_total > 1 {
            // Hand the caller's recorder across the pool boundary so worker
            // spans and counters land in the same sink (thread-locals do
            // not cross `spawn`); `None` stays silent on every path.
            let recorder = spex_obs::current_recorder();
            spex_pool::run_indexed(threads, params.len(), recorder.as_ref(), infer_one)
        } else {
            (0..params.len()).map(infer_one).collect()
        };
        // Pass counters derive from the live set, not loop order — the
        // exact tallies the serial loop would have accumulated.
        passes.basic_type += live_total;
        passes.semantic_type += live_total;
        passes.range += live_total;

        // Second pass: multi-parameter constraints over the slices. These
        // scan branch sites once for the whole module; constraints are
        // attributed to the dependent / left-hand parameter, and under a
        // scope only in-scope parameters receive fresh attributions.
        if in_scope.iter().any(|live| *live) {
            let names: Vec<String> = reports.iter().map(|r| r.param.name.clone()).collect();
            passes.control_dep += 1;
            let cd_span = spex_obs::span("infer.control_dep");
            let deps = control_dep::infer(&am, &summaries, &names, &taints, &vindex);
            drop(cd_span);
            for c in deps {
                if let crate::constraint::ConstraintKind::ControlDep(d) = &c.kind {
                    if let Some(r) = reports
                        .iter_mut()
                        .find(|r| r.param.name == d.dependent && !r.stale)
                    {
                        r.constraints.push(c);
                    }
                }
            }
            passes.value_rel += 1;
            let vr_span = spex_obs::span("infer.value_rel");
            let rels = value_rel::infer(&am, &summaries, &names, &vindex);
            drop(vr_span);
            for c in rels {
                if let crate::constraint::ConstraintKind::ValueRel(v) = &c.kind {
                    if let Some(r) = reports
                        .iter_mut()
                        .find(|r| r.param.name == v.lhs && !r.stale)
                    {
                        r.constraints.push(c);
                    }
                }
            }
        }

        passes.record_metrics();
        SpexAnalysis {
            am,
            reports,
            summaries,
            passes,
        }
    }
}

/// Closes a set of dirty function names over the call graph: dirty
/// functions plus every transitive *callee* of one. Editing a caller can
/// change the guards its callees inherit (the control-dependency pass
/// propagates branch conditions caller → callee), so a parameter used only
/// inside a callee still needs re-inference when the caller changes.
fn expand_dirty_functions(
    am: &AnalyzedModule,
    names: &BTreeSet<String>,
) -> std::collections::HashSet<FuncId> {
    // Caller → callees adjacency (the call graph stores the reverse).
    let mut callees_of: HashMap<FuncId, Vec<FuncId>> = HashMap::new();
    for (callee, sites) in &am.callgraph.callers_of {
        for site in sites {
            callees_of.entry(site.caller).or_default().push(*callee);
        }
    }
    let mut dirty: std::collections::HashSet<FuncId> = am
        .module
        .functions
        .iter()
        .enumerate()
        .filter(|(_, f)| names.contains(&f.name))
        .map(|(i, _)| FuncId(i as u32))
        .collect();
    let mut work: Vec<FuncId> = dirty.iter().copied().collect();
    while let Some(f) = work.pop() {
        for callee in callees_of.get(&f).into_iter().flatten() {
            if dirty.insert(*callee) {
                work.push(*callee);
            }
        }
    }
    dirty
}

/// Maps every tainted SSA value to the parameters whose flow reaches it.
pub(crate) fn build_value_index(
    taints: &[Arc<TaintResult>],
) -> HashMap<(FuncId, ValueId), Vec<usize>> {
    let mut index: HashMap<(FuncId, ValueId), Vec<usize>> = HashMap::new();
    for (pi, t) in taints.iter().enumerate() {
        for key in t.values.keys() {
            index.entry(*key).or_default().push(pi);
        }
    }
    index
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::ConstraintKind;

    fn analyze(src: &str, ann: &str) -> SpexAnalysis {
        let p = spex_lang::parse_program(src).unwrap();
        let m = spex_ir::lower_program(&p).unwrap();
        let anns = Annotation::parse(ann).unwrap();
        Spex::analyze(m, &anns)
    }

    #[test]
    fn end_to_end_single_param() {
        let a = analyze(
            r#"
            int listener_threads = 16;
            struct opt { char* name; int* var; };
            struct opt options[] = { { "listener-threads", &listener_threads } };
            void startup() {
                if (listener_threads > 16) { exit(1); }
                listen(0, listener_threads);
            }
            "#,
            "{ @STRUCT = options\n @PAR = [opt, 1]\n @VAR = [opt, 2] }",
        );
        let r = a.param("listener-threads").unwrap();
        let cats: Vec<&str> = r.constraints.iter().map(|c| c.kind.category()).collect();
        assert!(cats.contains(&"basic-type"), "got {cats:?}");
        assert!(cats.contains(&"data-range"), "got {cats:?}");
    }

    #[test]
    fn counts_by_category_accumulate() {
        let a = analyze(
            r#"
            int t1 = 1;
            int t2 = 2;
            struct opt { char* name; int* var; };
            struct opt options[] = { { "a", &t1 }, { "b", &t2 } };
            void use() { sleep(t1); sleep(t2); }
            "#,
            "{ @STRUCT = options\n @PAR = [opt, 1]\n @VAR = [opt, 2] }",
        );
        let counts = a.counts_by_category();
        assert_eq!(counts.get("basic-type"), Some(&2));
        assert_eq!(counts.get("semantic-type"), Some(&2));
    }

    #[test]
    fn control_dependency_attributed_to_dependent() {
        // PostgreSQL fsync/commit_siblings pattern (Figure 3e).
        let a = analyze(
            r#"
            int fsync_on = 1;
            int commit_siblings = 5;
            struct opt { char* name; int* var; };
            struct opt options[] = {
                { "fsync", &fsync_on }, { "commit_siblings", &commit_siblings }
            };
            void commit() {
                if (fsync_on) {
                    int n = commit_siblings;
                    if (n > 0) { sleep(n); }
                }
            }
            "#,
            "{ @STRUCT = options\n @PAR = [opt, 1]\n @VAR = [opt, 2] }",
        );
        let r = a.param("commit_siblings").unwrap();
        let dep = r.constraints.iter().find_map(|c| match &c.kind {
            ConstraintKind::ControlDep(d) => Some(d),
            _ => None,
        });
        let dep = dep.expect("control dependency inferred");
        assert_eq!(dep.controller, "fsync");
        assert!(dep.confidence >= 0.75);
    }

    #[test]
    fn value_relationship_via_intermediate() {
        // MySQL ft_min/ft_max pattern (Figure 3f).
        let a = analyze(
            r#"
            int ft_min_word_len = 4;
            int ft_max_word_len = 84;
            struct opt { char* name; int* var; };
            struct opt options[] = {
                { "ft_min_word_len", &ft_min_word_len },
                { "ft_max_word_len", &ft_max_word_len }
            };
            void ft_get_word(int length) {
                if (length >= ft_min_word_len && length < ft_max_word_len) {
                    listen(0, length);
                }
            }
            "#,
            "{ @STRUCT = options\n @PAR = [opt, 1]\n @VAR = [opt, 2] }",
        );
        let rel = a.all_constraints().find_map(|c| match &c.kind {
            ConstraintKind::ValueRel(v) => Some(v.clone()),
            _ => None,
        });
        let rel = rel.expect("value relationship inferred");
        // min < max, possibly reported from either side.
        let readable = format!("{rel}");
        assert!(
            readable.contains("ft_min_word_len") && readable.contains("ft_max_word_len"),
            "got {readable}"
        );
    }
}
