//! Shared branch machinery: locating the conditional branch a comparison
//! feeds, and classifying the behaviour of a branch's region (§2.2.3).
//!
//! "If in the branch block, the program exits, aborts, returns error code,
//! or resets the parameter, SPEX treats the range as invalid."

use spex_dataflow::{AnalyzedModule, MemLoc, TaintResult, UseSite};
use spex_ir::{BlockId, Callee, ConstVal, FuncId, Instr, Place, Terminator, ValueId};
use spex_lang::diag::Span;

/// What a guarded region does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BranchBehavior {
    /// Calls `exit`/`abort` (directly or through a no-return helper).
    Exit,
    /// Returns a negative constant (error code).
    ErrorReturn,
    /// Overwrites the parameter's storage. `logged` records whether a log
    /// call accompanies the reset (silent resets are the "silent violation"
    /// vulnerability class).
    Reset {
        /// Where the overwrite happens.
        span: Span,
        /// Whether a logging call appears in the same region.
        logged: bool,
    },
    /// Anything else.
    Normal,
}

impl BranchBehavior {
    /// Whether this behaviour marks the guarded value range as invalid.
    pub fn is_invalid(&self) -> bool {
        !matches!(self, BranchBehavior::Normal)
    }
}

/// The two targets of the conditional branch fed by `cond_value`, normalised
/// so that `.0` is taken when the condition is **true**. Follows `!x` and
/// `x == 0` / `x != 0` wrappers.
pub fn branch_sides(
    am: &AnalyzedModule,
    fid: FuncId,
    cond_value: ValueId,
) -> Option<(BlockId, BlockId)> {
    let func = am.module.func(fid);
    let ud = &am.usedefs[fid.index()];
    for site in ud.uses_of(cond_value) {
        match site {
            UseSite::Term(b) => {
                if let Terminator::CondBr {
                    then_bb, else_bb, ..
                } = &func.blocks[b.index()].term.0
                {
                    return Some((*then_bb, *else_bb));
                }
            }
            UseSite::Instr(b, i) => match &func.blocks[b.index()].instrs[*i].0 {
                Instr::Un {
                    dst,
                    op: spex_lang::ast::UnOp::Not,
                    ..
                } => {
                    if let Some((t, e)) = branch_sides(am, fid, *dst) {
                        return Some((e, t));
                    }
                }
                Instr::Bin {
                    dst,
                    op: spex_lang::ast::BinOp::Eq,
                    lhs,
                    rhs,
                } => {
                    let other = if *lhs == cond_value { *rhs } else { *lhs };
                    if is_const_zero(am, fid, other) {
                        if let Some((t, e)) = branch_sides(am, fid, *dst) {
                            return Some((e, t));
                        }
                    }
                }
                Instr::Bin {
                    dst,
                    op: spex_lang::ast::BinOp::Ne,
                    lhs,
                    rhs,
                } => {
                    let other = if *lhs == cond_value { *rhs } else { *lhs };
                    if is_const_zero(am, fid, other) {
                        if let Some((t, e)) = branch_sides(am, fid, *dst) {
                            return Some((t, e));
                        }
                    }
                }
                _ => {}
            },
        }
    }
    None
}

fn is_const_zero(am: &AnalyzedModule, fid: FuncId, v: ValueId) -> bool {
    crate::mapping::const_int(am, fid, v) == Some(0)
}

/// Blocks of the straight-line region starting at `head`: follow
/// unconditional branches into blocks still dominated by `head`, stopping
/// at nested conditional branches (the paper classifies "the corresponding
/// branch blocks", not everything the branch eventually reaches).
pub fn straight_line_region(am: &AnalyzedModule, fid: FuncId, head: BlockId) -> Vec<BlockId> {
    let func = am.module.func(fid);
    let dom = &am.doms[fid.index()];
    let mut region = vec![head];
    let mut cur = head;
    loop {
        match &func.blocks[cur.index()].term.0 {
            Terminator::Br(next) if dom.dominates(head, *next) && *next != head => {
                region.push(*next);
                cur = *next;
            }
            _ => break,
        }
    }
    region
}

/// Classifies the straight-line region starting at `head` for parameter
/// `taint`.
pub fn classify_region(
    am: &AnalyzedModule,
    fid: FuncId,
    head: BlockId,
    taint: &TaintResult,
) -> BranchBehavior {
    let func = am.module.func(fid);

    // The load places of the parameter within this function, used to detect
    // resets through pointer-based places that have no abstract MemLoc.
    // Skipped entirely for empty taints (callers probing only for
    // exit/error behaviour) — the scan over the whole function would
    // otherwise dominate hot paths.
    let tainted_load_places: Vec<&Place> = if taint.values.is_empty() {
        Vec::new()
    } else {
        func.iter_instrs()
            .filter_map(|(_, _, i, _)| match i {
                Instr::Load { dst, place } if taint.is_tainted(fid, *dst) => Some(place),
                _ => None,
            })
            .collect()
    };

    let mut reset: Option<(Span, bool)> = None;
    let mut has_log = false;
    let mut error_return = false;
    let mut exits = false;

    for b in straight_line_region(am, fid, head) {
        let blk = &func.blocks[b.index()];
        for (instr, span) in &blk.instrs {
            match instr {
                Instr::Call { callee, .. } => match callee {
                    Callee::Builtin(bi) if bi.is_noreturn() => exits = true,
                    Callee::Builtin(bi) if bi.is_logging() => has_log = true,
                    Callee::Func(g) if function_never_returns(am, *g) => {
                        exits = true;
                    }
                    _ => {}
                },
                Instr::Store { place, .. } => {
                    let hits_param_mem = MemLoc::from_place(fid, place)
                        .map(|loc| taint.mem.keys().any(|l| l.may_alias(&loc)))
                        .unwrap_or(false);
                    let hits_param_place = tainted_load_places.contains(&place);
                    if (hits_param_mem || hits_param_place) && reset.is_none() {
                        reset = Some((*span, false));
                    }
                }
                _ => {}
            }
        }
        if let Terminator::Ret(Some(v)) = &blk.term.0 {
            if let Some(c) = crate::mapping::const_int(am, fid, *v) {
                if c < 0 {
                    error_return = true;
                }
            }
            if is_const_null(am, fid, *v) {
                error_return = true;
            }
        }
    }

    if exits {
        return BranchBehavior::Exit;
    }
    if error_return {
        return BranchBehavior::ErrorReturn;
    }
    if let Some((span, _)) = reset {
        return BranchBehavior::Reset {
            span,
            logged: has_log,
        };
    }
    BranchBehavior::Normal
}

fn is_const_null(am: &AnalyzedModule, fid: FuncId, v: ValueId) -> bool {
    let func = am.module.func(fid);
    matches!(
        am.usedefs[fid.index()].def_instr(func, v),
        Some(Instr::Const {
            val: ConstVal::Null,
            ..
        })
    )
}

/// Whether a function has no reachable `ret` (a `die()`-style helper that
/// always exits).
pub fn function_never_returns(am: &AnalyzedModule, f: FuncId) -> bool {
    let func = am.module.func(f);
    let cfg = &am.cfgs[f.index()];
    let has_exit_call = func.iter_instrs().any(|(_, _, i, _)| {
        matches!(
            i,
            Instr::Call {
                callee: Callee::Builtin(b),
                ..
            } if b.is_noreturn()
        )
    });
    if !has_exit_call {
        return false;
    }
    !func.blocks.iter().enumerate().any(|(bi, blk)| {
        cfg.is_reachable(BlockId(bi as u32)) && matches!(blk.term.0, Terminator::Ret(_))
    })
}

/// Whether a logging builtin is called in the straight-line region starting
/// at `head` (used by the silent-overruling detector).
pub fn region_logs(am: &AnalyzedModule, fid: FuncId, head: BlockId) -> bool {
    let func = am.module.func(fid);
    straight_line_region(am, fid, head).into_iter().any(|b| {
        func.blocks[b.index()].instrs.iter().any(|(i, _)| {
            matches!(
                i,
                Instr::Call {
                    callee: Callee::Builtin(bi),
                    ..
                } if bi.is_logging()
            )
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spex_dataflow::{AnalyzedModule, TaintEngine, TaintRoot};

    fn setup(src: &str) -> AnalyzedModule {
        let p = spex_lang::parse_program(src).unwrap();
        let m = spex_ir::lower_program(&p).unwrap();
        AnalyzedModule::build(m)
    }

    #[test]
    fn detects_noreturn_helper() {
        let am = setup(
            "void die(char* m) { fprintf(stderr, \"%s\", m); exit(1); }
             void ok() { printf(\"fine\"); }",
        );
        let die = am.module.function_by_name("die").unwrap();
        let ok = am.module.function_by_name("ok").unwrap();
        assert!(function_never_returns(&am, die));
        assert!(!function_never_returns(&am, ok));
    }

    #[test]
    fn classifies_exit_region() {
        let am = setup(
            "int knob = 1;
             void f() { if (knob > 5) { exit(1); } }",
        );
        let g = am.module.global_by_name("knob").unwrap();
        let t = TaintEngine::new(&am).run(&[TaintRoot::global(g)]);
        let fid = am.module.function_by_name("f").unwrap();
        // The comparison's branch.
        let func = am.module.func(fid);
        let cmp = func
            .iter_instrs()
            .find_map(|(_, _, i, _)| match i {
                Instr::Bin { dst, op, .. } if op.is_comparison() => Some(*dst),
                _ => None,
            })
            .unwrap();
        let (t_bb, e_bb) = branch_sides(&am, fid, cmp).unwrap();
        assert_eq!(classify_region(&am, fid, t_bb, &t), BranchBehavior::Exit);
        assert_eq!(classify_region(&am, fid, e_bb, &t), BranchBehavior::Normal);
    }

    #[test]
    fn classifies_reset_region() {
        let am = setup(
            "int intlen = 8;
             void f() { if (intlen > 255) { intlen = 255; } }",
        );
        let g = am.module.global_by_name("intlen").unwrap();
        let t = TaintEngine::new(&am).run(&[TaintRoot::global(g)]);
        let fid = am.module.function_by_name("f").unwrap();
        let func = am.module.func(fid);
        let cmp = func
            .iter_instrs()
            .find_map(|(_, _, i, _)| match i {
                Instr::Bin { dst, op, .. } if op.is_comparison() => Some(*dst),
                _ => None,
            })
            .unwrap();
        let (t_bb, _) = branch_sides(&am, fid, cmp).unwrap();
        match classify_region(&am, fid, t_bb, &t) {
            BranchBehavior::Reset { logged, .. } => assert!(!logged),
            other => panic!("expected reset, got {other:?}"),
        }
    }

    #[test]
    fn negated_condition_flips_sides() {
        let am = setup(
            "int on = 1;
             void f() { if (!on) { exit(1); } }",
        );
        let g = am.module.global_by_name("on").unwrap();
        let t = TaintEngine::new(&am).run(&[TaintRoot::global(g)]);
        let fid = am.module.function_by_name("f").unwrap();
        let func = am.module.func(fid);
        // The load of `on` feeds a Not; branch_sides on the load should give
        // (else-of-not, then-of-not) — i.e. true side is the non-exit one.
        let load = func
            .iter_instrs()
            .find_map(|(_, _, i, _)| match i {
                Instr::Load { dst, .. } => Some(*dst),
                _ => None,
            })
            .unwrap();
        let (true_side, false_side) = branch_sides(&am, fid, load).unwrap();
        assert_eq!(
            classify_region(&am, fid, true_side, &t),
            BranchBehavior::Normal
        );
        assert_eq!(
            classify_region(&am, fid, false_side, &t),
            BranchBehavior::Exit
        );
    }

    #[test]
    fn error_return_is_invalid() {
        let am = setup(
            "int n = 1;
             int f() { if (n > 9) { return -1; } return 0; }",
        );
        let g = am.module.global_by_name("n").unwrap();
        let t = TaintEngine::new(&am).run(&[TaintRoot::global(g)]);
        let fid = am.module.function_by_name("f").unwrap();
        let func = am.module.func(fid);
        let cmp = func
            .iter_instrs()
            .find_map(|(_, _, i, _)| match i {
                Instr::Bin { dst, op, .. } if op.is_comparison() => Some(*dst),
                _ => None,
            })
            .unwrap();
        let (t_bb, _) = branch_sides(&am, fid, cmp).unwrap();
        assert_eq!(
            classify_region(&am, fid, t_bb, &t),
            BranchBehavior::ErrorReturn
        );
        assert!(BranchBehavior::ErrorReturn.is_invalid());
    }
}
