//! Control-dependency inference (§2.2.4, Figure 3e).
//!
//! For each parameter Q, SPEX starts from Q's *usage statements* (uses in
//! branches, arithmetic operations and system/library-call arguments —
//! passing to a function or storing is not usage) and walks dominating
//! conditional branches. If a dominating condition involves another
//! parameter P compared with a constant V, the candidate dependency
//! `(P, V, ⋄) → Q` is recorded.
//!
//! Blindly reporting every such occurrence yields false constraints (the
//! VSFTP `listen`/`listen_ipv6` example), so candidates are aggregated over
//! all of Q's usage sites and reported only when the MAY-belief confidence
//! — the fraction of usage sites guarded by the check — reaches the
//! threshold (0.75, as in the paper).
//!
//! Guards are propagated across calls: when *every* call site of a function
//! is guarded by the same check, usages inside the function inherit it
//! (that is how the PostgreSQL `fsync → commit_siblings` dependency is
//! found: all of `commit_siblings`' usages sit in a callee invoked under
//! `if (fsync && ...)`).

use crate::constraint::{CmpOp, Constraint, ConstraintKind, ControlDep};
use crate::mapping::const_int;
use spex_dataflow::{AnalyzedModule, ModuleSummaries, ReturnTransfer, TaintResult, UseSite};
use spex_ir::{BlockId, Callee, FuncId, Instr, Terminator, ValueId};
use spex_lang::diag::Span;
use std::collections::{HashMap, HashSet};

/// The MAY-belief confidence threshold (the paper uses 0.75).
pub const CONFIDENCE_THRESHOLD: f64 = 0.75;

/// A candidate guard: parameter index, constant, operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Guard {
    param: usize,
    value: i64,
    op: CmpOp,
}

/// Infers all control dependencies across the parameter set.
pub fn infer(
    am: &AnalyzedModule,
    summaries: &ModuleSummaries,
    names: &[String],
    taints: &[std::sync::Arc<TaintResult>],
    vindex: &HashMap<(FuncId, ValueId), Vec<usize>>,
) -> Vec<Constraint> {
    let mut intra = IntraGuards::compute(am, summaries, vindex);
    let inherited = compute_inherited_guards(am, &mut intra);

    let mut out = Vec::new();
    for (qi, taint) in taints.iter().enumerate() {
        let sites = usage_sites(am, taint);
        if sites.is_empty() {
            continue;
        }
        // Tally guards over all usage sites.
        let mut tally: HashMap<Guard, (usize, Span)> = HashMap::new();
        for &(f, b, span) in &sites {
            let mut guards: HashSet<Guard> = intra.guards_at(am, f, b).clone();
            if let Some(inh) = inherited.get(&f) {
                guards.extend(inh.iter().copied());
            }
            for g in guards {
                if g.param == qi {
                    continue;
                }
                let e = tally.entry(g).or_insert((0, span));
                e.0 += 1;
            }
        }
        for (g, (count, span)) in tally {
            let confidence = count as f64 / sites.len() as f64;
            if confidence + 1e-9 >= CONFIDENCE_THRESHOLD {
                out.push(Constraint {
                    param: names[qi].clone(),
                    kind: ConstraintKind::ControlDep(ControlDep {
                        controller: names[g.param].clone(),
                        value: g.value,
                        op: g.op,
                        dependent: names[qi].clone(),
                        confidence,
                    }),
                    in_function: String::new(),
                    span,
                });
            }
        }
    }
    out
}

/// Q's usage sites: `(function, block, span)` per usage instruction.
fn usage_sites(am: &AnalyzedModule, taint: &TaintResult) -> Vec<(FuncId, BlockId, Span)> {
    let mut sites = Vec::new();
    for &(f, v) in taint.values.keys() {
        let func = am.module.func(f);
        let ud = &am.usedefs[f.index()];
        for site in ud.uses_of(v) {
            match site {
                UseSite::Term(b) => {
                    let span = func.blocks[b.index()].term.1;
                    match &func.blocks[b.index()].term.0 {
                        Terminator::CondBr { .. } | Terminator::Switch { .. } => {
                            sites.push((f, *b, span));
                        }
                        _ => {}
                    }
                }
                UseSite::Instr(b, i) => {
                    let (instr, span) = &func.blocks[b.index()].instrs[*i];
                    match instr {
                        Instr::Bin { .. } | Instr::Un { .. } => sites.push((f, *b, *span)),
                        Instr::Call {
                            callee: Callee::Builtin(bi),
                            ..
                        } if bi.is_behavioral_use() => sites.push((f, *b, *span)),
                        // Stores, casts, phis, loads, calls to defined
                        // functions: not usage (§2.2.4 and [29]).
                        _ => {}
                    }
                }
            }
        }
    }
    sites
}

/// Per-function guard extraction from dominating conditional branches,
/// memoised per block (guards are parameter-independent, and large startup
/// functions have thousands of usage sites sharing dominator chains).
struct IntraGuards<'a> {
    summaries: &'a ModuleSummaries,
    vindex: &'a HashMap<(FuncId, ValueId), Vec<usize>>,
    cache: HashMap<(FuncId, BlockId), HashSet<Guard>>,
}

impl<'a> IntraGuards<'a> {
    fn compute(
        _am: &AnalyzedModule,
        summaries: &'a ModuleSummaries,
        vindex: &'a HashMap<(FuncId, ValueId), Vec<usize>>,
    ) -> IntraGuards<'a> {
        IntraGuards {
            summaries,
            vindex,
            cache: HashMap::new(),
        }
    }

    /// Guards protecting block `b` of function `f`: for every dominator `d`
    /// ending in a conditional branch on a parameter, the implied
    /// `(param, V, ⋄)` with the side taken into account.
    ///
    /// Branches whose other side is an error path (`exit`, error return)
    /// are *validation checks* on the tested parameter, not feature gates:
    /// everything after `if (p out of range) exit(1);` trivially "depends"
    /// on p, but that is not the §2.2.4 notion of a control dependency, so
    /// such guards are skipped.
    fn guards_at(&mut self, am: &AnalyzedModule, f: FuncId, b: BlockId) -> &HashSet<Guard> {
        use crate::infer::branch::{classify_region, BranchBehavior};
        if self.cache.contains_key(&(f, b)) {
            return &self.cache[&(f, b)];
        }
        let func = am.module.func(f);
        let dom = &am.doms[f.index()];
        let empty_taint = spex_dataflow::TaintResult::default();
        let mut out = HashSet::new();
        for d in dom.dominators_of(b) {
            if d == b {
                continue;
            }
            let Terminator::CondBr {
                cond,
                then_bb,
                else_bb,
            } = &func.blocks[d.index()].term.0
            else {
                continue;
            };
            // Which side leads to b?
            let (side, other) = if dom.dominates(*then_bb, b) {
                (true, *else_bb)
            } else if dom.dominates(*else_bb, b) {
                (false, *then_bb)
            } else {
                continue;
            };
            let other_behavior = classify_region(am, f, other, &empty_taint);
            if matches!(
                other_behavior,
                BranchBehavior::Exit | BranchBehavior::ErrorReturn
            ) {
                continue;
            }
            for g in self.guards_from_condition(am, f, *cond, side) {
                out.insert(g);
            }
        }
        self.cache.entry((f, b)).or_insert(out)
    }

    /// Decodes a branch condition into guards.
    fn guards_from_condition(
        &self,
        am: &AnalyzedModule,
        f: FuncId,
        cond: ValueId,
        side: bool,
    ) -> Vec<Guard> {
        let func = am.module.func(f);
        let ud = &am.usedefs[f.index()];
        let mut out = Vec::new();
        match ud.def_instr(func, cond) {
            Some(Instr::Bin { op, lhs, rhs, .. }) => {
                if let Some(cmp) = CmpOp::from_binop(*op) {
                    for (tainted, other, oriented) in [(lhs, rhs, cmp), (rhs, lhs, cmp.flipped())] {
                        let params = self.vindex.get(&(f, *tainted));
                        let Some(params) = params else { continue };
                        let Some(v) = const_int(am, f, *other) else {
                            continue;
                        };
                        let op = if side { oriented } else { oriented.negated() };
                        for &p in params {
                            out.push(Guard {
                                param: p,
                                value: v,
                                op,
                            });
                        }
                    }
                    return out;
                }
            }
            Some(Instr::Un {
                op: spex_lang::ast::UnOp::Not,
                operand,
                ..
            }) => {
                return self.guards_from_condition(am, f, *operand, !side);
            }
            // A branch on the result of a summarised predicate helper is a
            // guard on the argument passed to it: the predicate holds on the
            // taken side iff its conjunction of conditions holds.
            Some(Instr::Call {
                callee: Callee::Func(g),
                args,
                ..
            }) => {
                if let Some(ReturnTransfer::Predicate { param, conds }) =
                    &self.summaries.get(*g).ret
                {
                    let arg = args.get(*param as usize);
                    let params = arg.and_then(|a| self.vindex.get(&(f, *a)));
                    if let Some(params) = params {
                        // On the false side the negation of a multi-condition
                        // conjunction is a disjunction, which a Guard cannot
                        // express; only single-condition predicates negate.
                        if side || conds.len() == 1 {
                            for &(op, v) in conds {
                                let Some(cmp) = CmpOp::from_binop(op) else {
                                    continue;
                                };
                                let op = if side { cmp } else { cmp.negated() };
                                for &p in params {
                                    out.push(Guard {
                                        param: p,
                                        value: v,
                                        op,
                                    });
                                }
                            }
                        }
                    }
                    return out;
                }
            }
            _ => {}
        }
        // Truthiness test of a parameter value: `if (p)`.
        if let Some(params) = self.vindex.get(&(f, cond)) {
            let op = if side { CmpOp::Ne } else { CmpOp::Eq };
            for &p in params {
                out.push(Guard {
                    param: p,
                    value: 0,
                    op,
                });
            }
        }
        out
    }
}

/// Guards inherited through the call graph: a function called *only* from
/// sites protected by guard g is itself protected by g.
fn compute_inherited_guards(
    am: &AnalyzedModule,
    intra: &mut IntraGuards<'_>,
) -> HashMap<FuncId, HashSet<Guard>> {
    let mut inherited: HashMap<FuncId, HashSet<Guard>> = HashMap::new();
    // Fixpoint with a small iteration cap (call chains in config code are
    // shallow).
    for _ in 0..3 {
        let mut changed = false;
        for (fi, _) in am.module.functions.iter().enumerate() {
            let f = FuncId(fi as u32);
            let callers = am.callgraph.callers(f);
            if callers.is_empty() {
                continue;
            }
            let mut common: Option<HashSet<Guard>> = None;
            for cs in callers {
                let mut site_guards = intra.guards_at(am, cs.caller, cs.block).clone();
                if let Some(up) = inherited.get(&cs.caller) {
                    site_guards.extend(up.iter().copied());
                }
                common = Some(match common {
                    None => site_guards,
                    Some(prev) => prev.intersection(&site_guards).copied().collect(),
                });
            }
            let common = common.unwrap_or_default();
            if inherited.get(&f).map(|g| g != &common).unwrap_or(true) {
                inherited.insert(f, common);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    inherited
}

#[cfg(test)]
mod tests {
    use crate::annotations::Annotation;
    use crate::constraint::{CmpOp, ConstraintKind};
    use crate::infer::Spex;

    const TABLE_ANN: &str = "{ @STRUCT = options\n @PAR = [opt, 1]\n @VAR = [opt, 2] }";

    fn deps_of(src: &str, param: &str) -> Vec<(String, i64, CmpOp, f64)> {
        let p = spex_lang::parse_program(src).unwrap();
        let m = spex_ir::lower_program(&p).unwrap();
        let anns = Annotation::parse(TABLE_ANN).unwrap();
        let a = Spex::analyze(m, &anns);
        a.param(param)
            .map(|r| {
                r.constraints
                    .iter()
                    .filter_map(|c| match &c.kind {
                        ConstraintKind::ControlDep(d) => {
                            Some((d.controller.clone(), d.value, d.op, d.confidence))
                        }
                        _ => None,
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    #[test]
    fn direct_guard_inferred() {
        let deps = deps_of(
            r#"
            int use_ipv6 = 0;
            int listen_port = 21;
            struct opt { char* name; int* var; };
            struct opt options[] = { { "use_ipv6", &use_ipv6 }, { "listen_port", &listen_port } };
            void startup() {
                if (use_ipv6) {
                    bind(0, listen_port);
                }
            }
            "#,
            "listen_port",
        );
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].0, "use_ipv6");
        assert_eq!(deps[0].1, 0);
        assert_eq!(deps[0].2, CmpOp::Ne);
        assert!(deps[0].3 >= 0.99);
    }

    #[test]
    fn interprocedural_guard_inferred() {
        // Figure 3(e): commit_siblings used inside a call guarded by fsync.
        let deps = deps_of(
            r#"
            int fsync_on = 1;
            int commit_siblings = 5;
            struct opt { char* name; int* var; };
            struct opt options[] = { { "fsync", &fsync_on }, { "commit_siblings", &commit_siblings } };
            int MinimumActiveBackends() {
                int s = commit_siblings;
                return s * 2;
            }
            void RecordTransactionCommit() {
                if (fsync_on) {
                    MinimumActiveBackends();
                }
            }
            "#,
            "commit_siblings",
        );
        assert_eq!(deps.len(), 1, "got {deps:?}");
        assert_eq!(deps[0].0, "fsync");
        assert_eq!(deps[0].2, CmpOp::Ne);
    }

    #[test]
    fn vsftp_style_split_usage_is_filtered() {
        // listen_port used once under `listen` and once under
        // `listen_ipv6`: each candidate has confidence 0.5 < 0.75 and must
        // be filtered (§2.2.4).
        let deps = deps_of(
            r#"
            int listen_v4 = 1;
            int listen_v6 = 0;
            int listen_port = 21;
            struct opt { char* name; int* var; };
            struct opt options[] = {
                { "listen", &listen_v4 },
                { "listen_ipv6", &listen_v6 },
                { "listen_port", &listen_port }
            };
            void startup() {
                if (listen_v4 == 1) {
                    bind(0, listen_port);
                }
                if (listen_v6 == 1) {
                    bind(1, listen_port);
                }
            }
            "#,
            "listen_port",
        );
        assert!(
            deps.is_empty(),
            "both 0.5-confidence deps filtered: {deps:?}"
        );
    }

    #[test]
    fn comparison_guard_with_constant() {
        let deps = deps_of(
            r#"
            int mode = 2;
            int cache_size = 64;
            struct opt { char* name; int* var; };
            struct opt options[] = { { "mode", &mode }, { "cache_size", &cache_size } };
            void setup() {
                if (mode > 1) {
                    malloc(cache_size);
                }
            }
            "#,
            "cache_size",
        );
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].0, "mode");
        assert_eq!(deps[0].1, 1);
        assert_eq!(deps[0].2, CmpOp::Gt);
    }

    #[test]
    fn no_self_dependency() {
        let deps = deps_of(
            r#"
            int burst = 10;
            struct opt { char* name; int* var; };
            struct opt options[] = { { "burst", &burst } };
            void f() {
                if (burst > 0) { sleep(burst); }
            }
            "#,
            "burst",
        );
        assert!(deps.is_empty());
    }
}
