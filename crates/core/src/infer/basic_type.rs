//! Basic-type inference (§2.2.2, Figure 3a).
//!
//! "SPEX infers each parameter's basic type from its type information in
//! source code. On the data-flow path of a parameter, its type might be
//! casted multiple times. In such cases, we record the type after the first
//! casting as the basic type, because it is common for a parameter to be
//! first stored as a string before being transformed into its real type."

use crate::constraint::{BasicType, Constraint, ConstraintKind};
use crate::mapping::MappedParam;
use spex_dataflow::{AnalyzedModule, ModuleSummaries, ReturnTransfer, TaintResult, UseSite};
use spex_ir::{Callee, FuncId, Instr, ValueId};
use spex_lang::diag::Span;
use spex_lang::types::CType;

/// A string-to-value conversion event on the data-flow path.
struct ConversionEvent {
    depth: u32,
    ty: CType,
    func: FuncId,
    span: Span,
    dst: Option<ValueId>,
}

/// Infers the basic-type constraint for one parameter.
pub fn infer(
    am: &AnalyzedModule,
    summaries: &ModuleSummaries,
    param: &MappedParam,
    taint: &TaintResult,
) -> Option<Constraint> {
    let event = first_conversion(am, summaries, taint);
    if let Some(ev) = event {
        // Follow one refinement step: a conversion result immediately cast
        // or stored into a narrower location takes that location's type
        // (`int val = strtoll(...)` is a 32-bit integer parameter).
        let ty = refine_through_store(am, &ev).unwrap_or(ev.ty.clone());
        return Some(Constraint {
            param: param.name.clone(),
            kind: ConstraintKind::BasicType(BasicType::from_ctype(&ty)),
            in_function: am.module.func(ev.func).name.clone(),
            span: ev.span,
        });
    }
    // No conversion found: fall back on the backing variable's declared
    // type, then on the type of the shallowest tainted value (comparison-
    // mapped parameters have no declaration; their root value's type is the
    // representation the code reads).
    let ty = param
        .decl_ty
        .clone()
        .or_else(|| shallowest_type(am, taint))?;
    Some(Constraint {
        param: param.name.clone(),
        kind: ConstraintKind::BasicType(BasicType::from_ctype(&ty)),
        in_function: String::new(),
        span: param.decl_span,
    })
}

fn shallowest_type(am: &AnalyzedModule, taint: &TaintResult) -> Option<CType> {
    taint
        .values
        .iter()
        .min_by_key(|(_, depth)| **depth)
        .map(|((f, v), _)| am.module.func(*f).value_type(*v).clone())
}

fn first_conversion(
    am: &AnalyzedModule,
    summaries: &ModuleSummaries,
    taint: &TaintResult,
) -> Option<ConversionEvent> {
    let mut best: Option<ConversionEvent> = None;
    let mut consider = |ev: ConversionEvent| {
        if best.as_ref().map(|b| ev.depth < b.depth).unwrap_or(true) {
            best = Some(ev);
        }
    };
    for fid in taint.touched_functions() {
        let func = am.module.func(fid);
        for (_, _, instr, span) in func.iter_instrs() {
            match instr {
                Instr::Cast { dst, ty, operand } if taint.is_tainted(fid, *operand) => {
                    // Only casts that change representation matter.
                    let from = func.value_type(*operand);
                    if from != ty {
                        consider(ConversionEvent {
                            depth: taint.depth(fid, *operand).unwrap_or(u32::MAX),
                            ty: ty.clone(),
                            func: fid,
                            span,
                            dst: Some(*dst),
                        });
                    }
                }
                Instr::Call {
                    dst,
                    callee: Callee::Builtin(b),
                    args,
                } if b.is_numeric_conversion() => {
                    if let Some(arg) = args.first() {
                        if taint.is_tainted(fid, *arg) {
                            consider(ConversionEvent {
                                depth: taint.depth(fid, *arg).unwrap_or(u32::MAX),
                                ty: b.ret_type(),
                                func: fid,
                                span,
                                dst: *dst,
                            });
                        }
                    }
                }
                // A summarised wrapper around a numeric conversion acts as
                // the conversion itself at the call site; using the caller's
                // destination lets a caller-side store refine the type.
                Instr::Call {
                    dst,
                    callee: Callee::Func(g),
                    args,
                } => {
                    let Some(ReturnTransfer::Builtin(b)) = &summaries.get(*g).ret else {
                        continue;
                    };
                    if !b.is_numeric_conversion() {
                        continue;
                    }
                    if let Some(arg) = args.first() {
                        if taint.is_tainted(fid, *arg) {
                            consider(ConversionEvent {
                                depth: taint.depth(fid, *arg).unwrap_or(u32::MAX),
                                ty: b.ret_type(),
                                func: fid,
                                span,
                                dst: *dst,
                            });
                        }
                    }
                }
                _ => {}
            }
        }
    }
    best
}

/// If the conversion result is immediately cast or stored somewhere typed,
/// use that type (the paper's Storage-A example narrows `strtoll` to i32).
fn refine_through_store(am: &AnalyzedModule, ev: &ConversionEvent) -> Option<CType> {
    let dst = ev.dst?;
    let func = am.module.func(ev.func);
    let ud = &am.usedefs[ev.func.index()];
    for site in ud.uses_of(dst) {
        if let UseSite::Instr(b, i) = site {
            match &func.blocks[b.index()].instrs[*i].0 {
                Instr::Cast { ty, .. } => return Some(ty.clone()),
                Instr::Store { place, value } if *value == dst => {
                    return place_type(am, ev.func, place);
                }
                Instr::Phi { dst: phi, .. } => {
                    // A phi merges the conversion with other defs; its type
                    // is the merged slot's declared type.
                    return Some(func.value_type(*phi).clone());
                }
                _ => {}
            }
        }
    }
    None
}

fn place_type(am: &AnalyzedModule, fid: FuncId, place: &spex_ir::Place) -> Option<CType> {
    use spex_ir::{PlaceBase, PlaceElem};
    let mut ty = match place.base {
        PlaceBase::Slot(s) => am.module.func(fid).slots[s.index()].ty.clone(),
        PlaceBase::Global(g) => am.module.global(g).ty.clone(),
        PlaceBase::ValuePtr(v) => match am.module.func(fid).value_type(v) {
            CType::Ptr(inner) => (**inner).clone(),
            _ => return None,
        },
    };
    for e in &place.elems {
        ty = match (e, ty) {
            (PlaceElem::Field(i), CType::Struct(name)) => am
                .module
                .struct_layout(&name)?
                .fields
                .get(*i as usize)?
                .1
                .clone(),
            (PlaceElem::IndexConst(_) | PlaceElem::IndexValue(_), CType::Array(elem, _)) => *elem,
            (PlaceElem::IndexConst(_) | PlaceElem::IndexValue(_), CType::Ptr(elem)) => *elem,
            (PlaceElem::Deref, CType::Ptr(elem)) => *elem,
            _ => return None,
        };
    }
    Some(ty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotations::Annotation;
    use crate::constraint::BasicType;
    use crate::infer::Spex;

    fn basic_of(src: &str, ann: &str, param: &str) -> BasicType {
        let p = spex_lang::parse_program(src).unwrap();
        let m = spex_ir::lower_program(&p).unwrap();
        let anns = Annotation::parse(ann).unwrap();
        let a = Spex::analyze(m, &anns);
        a.param(param)
            .unwrap()
            .constraints
            .iter()
            .find_map(|c| match &c.kind {
                ConstraintKind::BasicType(b) => Some(b.clone()),
                _ => None,
            })
            .expect("basic type inferred")
    }

    #[test]
    fn declared_int_global() {
        let b = basic_of(
            r#"
            int workers = 4;
            struct opt { char* name; int* var; };
            struct opt options[] = { { "workers", &workers } };
            void f() { listen(0, workers); }
            "#,
            "{ @STRUCT = options\n @PAR = [opt, 1]\n @VAR = [opt, 2] }",
            "workers",
        );
        assert_eq!(
            b,
            BasicType::Int {
                bits: 32,
                signed: true
            }
        );
    }

    #[test]
    fn conversion_in_handler_gives_numeric_type() {
        // Figure 3(a): string converted with strtoll then stored in an int —
        // the parameter is a 32-bit integer.
        let b = basic_of(
            r#"
            struct cmd { char* name; fnptr handler; };
            int log_filesize = 0;
            int set_filesize(char* arg) {
                int val = strtoll(arg, NULL, 0);
                log_filesize = val;
                return 0;
            }
            struct cmd cmds[] = { { "log.filesize", set_filesize } };
            "#,
            "{ @STRUCT = cmds\n @PAR = [cmd, 1]\n @VAR = ([cmd, 2], $arg) }",
            "log.filesize",
        );
        assert_eq!(
            b,
            BasicType::Int {
                bits: 32,
                signed: true
            }
        );
    }

    #[test]
    fn atoi_without_narrowing_is_i32() {
        let b = basic_of(
            r#"
            struct cmd { char* name; fnptr handler; };
            int set_n(char* arg) { return atoi(arg); }
            struct cmd cmds[] = { { "n", set_n } };
            "#,
            "{ @STRUCT = cmds\n @PAR = [cmd, 1]\n @VAR = ([cmd, 2], $arg) }",
            "n",
        );
        assert_eq!(
            b,
            BasicType::Int {
                bits: 32,
                signed: true
            }
        );
    }

    #[test]
    fn string_param_without_conversion() {
        let b = basic_of(
            r#"
            char* log_path = "/var/log";
            struct opt { char* name; char* var; };
            struct opt options[] = { { "log_path", &log_path } };
            void f() { open(log_path, 0); }
            "#,
            "{ @STRUCT = options\n @PAR = [opt, 1]\n @VAR = [opt, 2] }",
            "log_path",
        );
        assert_eq!(b, BasicType::Str);
    }

    #[test]
    fn strtod_gives_double() {
        let b = basic_of(
            r#"
            struct cmd { char* name; fnptr handler; };
            double ratio = 0.5;
            int set_ratio(char* arg) {
                ratio = strtod(arg, NULL);
                return 0;
            }
            struct cmd cmds[] = { { "ratio", set_ratio } };
            "#,
            "{ @STRUCT = cmds\n @PAR = [cmd, 1]\n @VAR = ([cmd, 2], $arg) }",
            "ratio",
        );
        assert_eq!(b, BasicType::Float { bits: 64 });
    }
}
