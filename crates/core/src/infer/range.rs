//! Data-range inference (§2.2.3, Figure 3d).
//!
//! Three patterns yield range constraints:
//!
//! * numeric comparisons of the parameter with constants partition the
//!   number line; branch-behaviour classification marks subranges
//!   valid/invalid;
//! * `switch` on the parameter gives an enumerative integer range (the
//!   `default` arm is treated as invalid);
//! * `strcmp`-family chains against string literals give an enumerative
//!   word range (the final `else` is the unmatched behaviour).
//!
//! Constants read from annotated option-table rows (PostgreSQL-style `min`/
//! `max` columns) are resolved through the parameter's table row.

use crate::constraint::{
    Constraint, ConstraintKind, EnumAlternative, EnumRange, EnumValue, NumericRange, RangeSegment,
};
use crate::infer::branch::{branch_sides, classify_region, BranchBehavior};
use crate::mapping::{const_int, const_str, MappedParam};
use spex_dataflow::{AnalyzedModule, ModuleSummaries, ReturnTransfer, TaintResult};
use spex_ir::{Callee, ConstVal, FuncId, Instr, PlaceBase, PlaceElem, Terminator, ValueId};
use spex_lang::diag::Span;

/// One normalised comparison `param ⋄ V` whose truth makes the guarded
/// region behave as classified.
#[derive(Debug, Clone)]
struct CondFact {
    op: crate::constraint::CmpOp,
    value: i64,
    invalid_when_true: bool,
    span: Span,
    func: FuncId,
}

/// Infers range constraints (numeric and enumerative) for one parameter.
pub fn infer(
    am: &AnalyzedModule,
    summaries: &ModuleSummaries,
    param: &MappedParam,
    taint: &TaintResult,
) -> Vec<Constraint> {
    let mut out = Vec::new();
    if let Some(c) = infer_numeric(am, summaries, param, taint) {
        out.push(c);
    }
    out.extend(infer_switch(am, param, taint));
    out.extend(infer_strcmp_chain(am, param, taint));
    out
}

// --- Numeric ranges -----------------------------------------------------------

fn infer_numeric(
    am: &AnalyzedModule,
    summaries: &ModuleSummaries,
    param: &MappedParam,
    taint: &TaintResult,
) -> Option<Constraint> {
    let mut facts: Vec<CondFact> = Vec::new();
    for fid in taint.touched_functions() {
        let func = am.module.func(fid);
        for (_, _, instr, span) in func.iter_instrs() {
            let Instr::Bin { dst, op, lhs, rhs } = instr else {
                continue;
            };
            let Some(cmp) = crate::constraint::CmpOp::from_binop(*op) else {
                continue;
            };
            // Exactly one side tainted, the other a resolvable constant.
            let (tainted_side, other, oriented) =
                match (taint.is_tainted(fid, *lhs), taint.is_tainted(fid, *rhs)) {
                    (true, false) => (*lhs, *rhs, cmp),
                    (false, true) => (*rhs, *lhs, cmp.flipped()),
                    _ => continue,
                };
            let _ = tainted_side;
            let Some(v) = resolve_constant(am, fid, other, param) else {
                continue;
            };
            let Some((true_bb, false_bb)) = branch_sides(am, fid, *dst) else {
                continue;
            };
            let t_inv = classify_region(am, fid, true_bb, taint).is_invalid();
            let f_inv = classify_region(am, fid, false_bb, taint).is_invalid();
            if t_inv {
                facts.push(CondFact {
                    op: oriented,
                    value: v,
                    invalid_when_true: true,
                    span,
                    func: fid,
                });
            }
            if f_inv {
                facts.push(CondFact {
                    op: oriented.negated(),
                    value: v,
                    invalid_when_true: true,
                    span,
                    func: fid,
                });
            }
            if !t_inv && !f_inv {
                // Informational threshold: contributes a cutpoint only.
                facts.push(CondFact {
                    op: oriented,
                    value: v,
                    invalid_when_true: false,
                    span,
                    func: fid,
                });
            }
        }
    }
    // Interprocedural facts from callee summaries: a call passing the
    // tainted value to a summarised check or predicate helper contributes
    // the callee's comparisons as if they happened at the call site. These
    // are appended *after* the intra-procedural facts so the anchoring
    // (first invalid fact) of purely intra-procedural fixtures is stable.
    collect_summary_facts(am, summaries, taint, &mut facts);
    if facts.is_empty() || !facts.iter().any(|f| f.invalid_when_true) {
        return None;
    }
    let range = build_segments(&facts);
    let first = facts
        .iter()
        .find(|f| f.invalid_when_true)
        .expect("checked above");
    Some(Constraint {
        param: param.name.clone(),
        kind: ConstraintKind::Range(range),
        in_function: am.module.func(first.func).name.clone(),
        span: first.span,
    })
}

/// Collects range facts implied by calls into summarised helpers: check
/// summaries fire directly ("if `argᵢ ⋄ V` the callee errors out"), and
/// predicate return-transfers are combined with the classification of the
/// caller's branch on the returned truth value.
fn collect_summary_facts(
    am: &AnalyzedModule,
    summaries: &ModuleSummaries,
    taint: &TaintResult,
    facts: &mut Vec<CondFact>,
) {
    for fid in taint.touched_functions() {
        let func = am.module.func(fid);
        for (_, _, instr, span) in func.iter_instrs() {
            let Instr::Call {
                dst,
                callee: Callee::Func(g),
                args,
            } = instr
            else {
                continue;
            };
            let sum = summaries.get(*g);
            for cs in &sum.checks {
                let Some(&arg) = args.get(cs.param as usize) else {
                    continue;
                };
                if !taint.is_tainted(fid, arg) {
                    continue;
                }
                let Some(op) = crate::constraint::CmpOp::from_binop(cs.op) else {
                    continue;
                };
                facts.push(CondFact {
                    op,
                    value: cs.value,
                    invalid_when_true: true,
                    span,
                    func: fid,
                });
            }
            let Some(ReturnTransfer::Predicate { param: pi, conds }) = &sum.ret else {
                continue;
            };
            let Some(&arg) = args.get(*pi as usize) else {
                continue;
            };
            if !taint.is_tainted(fid, arg) {
                continue;
            }
            let Some(dst) = dst else {
                continue;
            };
            let Some((true_bb, false_bb)) = branch_sides(am, fid, *dst) else {
                continue;
            };
            let t_inv = classify_region(am, fid, true_bb, taint).is_invalid();
            let f_inv = classify_region(am, fid, false_bb, taint).is_invalid();
            let cmp_conds: Vec<(crate::constraint::CmpOp, i64)> = conds
                .iter()
                .filter_map(|&(op, v)| crate::constraint::CmpOp::from_binop(op).map(|c| (c, v)))
                .collect();
            if cmp_conds.len() != conds.len() {
                continue;
            }
            if f_inv {
                // Predicate false ⇒ invalid. The predicate holds when the
                // conjunction of its conditions holds, so the invalid set is
                // the union of the negations (De Morgan); facts are OR-ed
                // during segment sampling, which models exactly that union.
                for &(op, v) in &cmp_conds {
                    facts.push(CondFact {
                        op: op.negated(),
                        value: v,
                        invalid_when_true: true,
                        span,
                        func: fid,
                    });
                }
            }
            if t_inv && cmp_conds.len() == 1 {
                // Predicate true ⇒ invalid; only expressible as a fact
                // union for a single-condition predicate.
                let (op, v) = cmp_conds[0];
                facts.push(CondFact {
                    op,
                    value: v,
                    invalid_when_true: true,
                    span,
                    func: fid,
                });
            }
            if !t_inv && !f_inv {
                for &(op, v) in &cmp_conds {
                    facts.push(CondFact {
                        op,
                        value: v,
                        invalid_when_true: false,
                        span,
                        func: fid,
                    });
                }
            }
        }
    }
}

/// Resolves a comparison operand to a constant: a literal, or a constant
/// field of the parameter's option-table row (PostgreSQL min/max columns).
fn resolve_constant(
    am: &AnalyzedModule,
    fid: FuncId,
    v: ValueId,
    param: &MappedParam,
) -> Option<i64> {
    if let Some(c) = const_int(am, fid, v) {
        return Some(c);
    }
    // Table-row constant: `Load options[i].min` where `options` is the
    // parameter's annotated table.
    let (table, row) = param.table_row?;
    let func = am.module.func(fid);
    let Some(Instr::Load { place, .. }) = am.usedefs[fid.index()].def_instr(func, v) else {
        return None;
    };
    if place.base != PlaceBase::Global(table) {
        return None;
    }
    let [.., PlaceElem::Field(field)] = place.elems.as_slice() else {
        return None;
    };
    match &am.module.global(table).init {
        ConstVal::Aggregate(rows) => match rows.get(row)? {
            ConstVal::Aggregate(fields) => fields.get(*field as usize)?.as_int(),
            _ => None,
        },
        _ => None,
    }
}

/// Builds the valid/invalid partition of the number line from the facts by
/// sampling each elementary segment against the invalid conditions.
fn build_segments(facts: &[CondFact]) -> NumericRange {
    let mut cutpoints: Vec<i64> = facts.iter().map(|f| f.value).collect();
    cutpoints.sort_unstable();
    cutpoints.dedup();

    let is_invalid = |x: i64| {
        facts
            .iter()
            .filter(|f| f.invalid_when_true)
            .any(|f| f.op.eval(x, f.value))
    };

    // Elementary segments: (-inf, v0-1], [v0, v0], [v0+1, v1-1], ...
    let mut segments: Vec<RangeSegment> = Vec::new();
    let mut push = |lo: Option<i64>, hi: Option<i64>| {
        if let (Some(l), Some(h)) = (lo, hi) {
            if l > h {
                return;
            }
        }
        let sample = RangeSegment {
            lo,
            hi,
            valid: true,
        }
        .sample();
        segments.push(RangeSegment {
            lo,
            hi,
            valid: !is_invalid(sample),
        });
    };
    match cutpoints.as_slice() {
        [] => push(None, None),
        cps => {
            push(None, Some(cps[0] - 1));
            for (i, &c) in cps.iter().enumerate() {
                push(Some(c), Some(c));
                match cps.get(i + 1) {
                    Some(&next) => push(Some(c + 1), Some(next - 1)),
                    None => push(Some(c + 1), None),
                }
            }
        }
    }
    // Merge adjacent segments with equal validity.
    let mut merged: Vec<RangeSegment> = Vec::new();
    for seg in segments {
        match merged.last_mut() {
            Some(last) if last.valid == seg.valid => last.hi = seg.hi,
            _ => merged.push(seg),
        }
    }
    NumericRange {
        cutpoints,
        segments: merged,
    }
}

// --- Switch (enumerative integers) ---------------------------------------------

fn infer_switch(am: &AnalyzedModule, param: &MappedParam, taint: &TaintResult) -> Vec<Constraint> {
    let mut out = Vec::new();
    for fid in taint.touched_functions() {
        let func = am.module.func(fid);
        for (bi, blk) in func.blocks.iter().enumerate() {
            let Terminator::Switch {
                value,
                cases,
                default,
            } = &blk.term.0
            else {
                continue;
            };
            if !taint.is_tainted(fid, *value) {
                continue;
            }
            let alternatives: Vec<EnumAlternative> = cases
                .iter()
                .map(|(c, target)| EnumAlternative {
                    value: EnumValue::Int(*c),
                    valid: !classify_region(am, fid, *target, taint).is_invalid(),
                })
                .collect();
            // The paper treats `default` as invalid; distinguish loud
            // (error-path) defaults from silent ones.
            let unmatched_is_error =
                classify_region(am, fid, *default, taint) != BranchBehavior::Normal;
            let arm_heads: Vec<spex_ir::BlockId> = cases.iter().map(|(_, t)| *t).collect();
            let unmatched_overwrites =
                region_overwrites_shared_store(am, fid, *default, &arm_heads);
            let _ = bi;
            out.push(Constraint {
                param: param.name.clone(),
                kind: ConstraintKind::EnumRange(EnumRange {
                    alternatives,
                    unmatched_is_error,
                    unmatched_overwrites,
                    case_insensitive: false,
                }),
                in_function: func.name.clone(),
                span: blk.term.1,
            });
        }
    }
    out
}

// --- strcmp chains (enumerative words) -------------------------------------------

fn infer_strcmp_chain(
    am: &AnalyzedModule,
    param: &MappedParam,
    taint: &TaintResult,
) -> Vec<Constraint> {
    let mut out = Vec::new();
    for fid in taint.touched_functions() {
        let func = am.module.func(fid);
        // Collect the chain: string comparisons of a tainted value against
        // literals.
        struct Link {
            literal: String,
            case_insensitive: bool,
            true_bb: spex_ir::BlockId,
            false_bb: spex_ir::BlockId,
            span: Span,
        }
        let mut links: Vec<Link> = Vec::new();
        for (_, _, instr, span) in func.iter_instrs() {
            let Instr::Call {
                dst: Some(dst),
                callee: Callee::Builtin(b),
                args,
            } = instr
            else {
                continue;
            };
            if !b.is_string_comparison() || args.len() < 2 {
                continue;
            }
            let tainted = args.iter().any(|a| taint.is_tainted(fid, *a));
            let lit = args.iter().find_map(|a| const_str(am, fid, *a));
            let (true, Some(literal)) = (tainted, lit) else {
                continue;
            };
            // A string comparison "matches" when it returns zero, so the
            // match block is the *false* side of the raw truth value; the
            // Eq-0/Not wrappers are already normalised by `branch_sides`,
            // which returns sides for "call result is nonzero". Flip here.
            let Some((nonzero_bb, zero_bb)) = branch_sides(am, fid, *dst) else {
                continue;
            };
            links.push(Link {
                literal,
                case_insensitive: b.is_case_insensitive(),
                true_bb: zero_bb,
                false_bb: nonzero_bb,
                span,
            });
        }
        if links.is_empty() {
            continue;
        }
        let dom = &am.doms[fid.index()];
        // Final else: a false-side whose region contains no further chain
        // comparison. Its behaviour decides how unmatched input is treated:
        // a loud error path (exit / error return / logged reset) versus a
        // silent coercion (the silent-overruling pattern).
        let mut unmatched_is_error = false;
        let mut unmatched_overwrites = false;
        for l in &links {
            let contains_next = links.iter().any(|other| {
                !std::ptr::eq(l, other)
                    && dom.dominates(l.false_bb, find_cmp_block(func, other.span))
            });
            if !contains_next {
                unmatched_is_error = match classify_region(am, fid, l.false_bb, taint) {
                    BranchBehavior::Exit | BranchBehavior::ErrorReturn => true,
                    BranchBehavior::Reset { logged, .. } => logged,
                    BranchBehavior::Normal => false,
                };
                // The parameter's variable is whatever the match arms
                // assign; the else assigning the same place is the
                // overruling signature (Figure 6c).
                let arm_heads: Vec<spex_ir::BlockId> = links.iter().map(|l2| l2.true_bb).collect();
                unmatched_overwrites =
                    region_overwrites_shared_store(am, fid, l.false_bb, &arm_heads);
                if unmatched_overwrites && crate::infer::branch::region_logs(am, fid, l.false_bb) {
                    unmatched_is_error = true;
                }
                break;
            }
        }
        let alternatives: Vec<EnumAlternative> = links
            .iter()
            .map(|l| EnumAlternative {
                value: EnumValue::Str(l.literal.clone()),
                valid: !classify_region(am, fid, l.true_bb, taint).is_invalid(),
            })
            .collect();
        let case_insensitive = links.iter().all(|l| l.case_insensitive);
        out.push(Constraint {
            param: param.name.clone(),
            kind: ConstraintKind::EnumRange(EnumRange {
                alternatives,
                unmatched_is_error,
                unmatched_overwrites,
                case_insensitive,
            }),
            in_function: func.name.clone(),
            span: links[0].span,
        });
    }
    out
}

/// Whether the straight-line region at `head` stores to a place also
/// stored by one of the `arm_heads` regions — the "same variable assigned
/// in both the match arm and the fall-through" overruling signature.
fn region_overwrites_shared_store(
    am: &AnalyzedModule,
    fid: FuncId,
    head: spex_ir::BlockId,
    arm_heads: &[spex_ir::BlockId],
) -> bool {
    let else_stores = store_places_in(am, fid, head);
    if else_stores.is_empty() {
        return false;
    }
    arm_heads.iter().any(|&arm| {
        store_places_in(am, fid, arm)
            .iter()
            .any(|p| else_stores.contains(p))
    })
}

fn store_places_in(
    am: &AnalyzedModule,
    fid: FuncId,
    head: spex_ir::BlockId,
) -> Vec<spex_ir::Place> {
    let func = am.module.func(fid);
    crate::infer::branch::straight_line_region(am, fid, head)
        .into_iter()
        .flat_map(|b| func.blocks[b.index()].instrs.iter())
        .filter_map(|(i, _)| match i {
            Instr::Store { place, .. } => Some(place.clone()),
            _ => None,
        })
        .collect()
}

/// Block containing the instruction at `span` (helper for chain ordering).
fn find_cmp_block(func: &spex_ir::Function, span: Span) -> spex_ir::BlockId {
    for (b, _, _, s) in func.iter_instrs() {
        if s == span {
            return b;
        }
    }
    func.entry()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotations::Annotation;
    use crate::infer::Spex;

    const TABLE_ANN: &str = "{ @STRUCT = options\n @PAR = [opt, 1]\n @VAR = [opt, 2] }";

    fn constraints_of(src: &str, ann: &str, param: &str) -> Vec<ConstraintKind> {
        let p = spex_lang::parse_program(src).unwrap();
        let m = spex_ir::lower_program(&p).unwrap();
        let anns = Annotation::parse(ann).unwrap();
        let a = Spex::analyze(m, &anns);
        a.param(param)
            .unwrap()
            .constraints
            .iter()
            .map(|c| c.kind.clone())
            .collect()
    }

    #[test]
    fn openldap_index_intlen_range() {
        // Figure 3(d): clamp to [4, 255] by silent reset.
        let kinds = constraints_of(
            r#"
            int index_intlen = 4;
            struct opt { char* name; int* var; };
            struct opt options[] = { { "index_intlen", &index_intlen } };
            void config_generic() {
                if (index_intlen < 4) { index_intlen = 4; }
                else if (index_intlen > 255) { index_intlen = 255; }
            }
            "#,
            TABLE_ANN,
            "index_intlen",
        );
        let range = kinds
            .iter()
            .find_map(|k| match k {
                ConstraintKind::Range(r) => Some(r),
                _ => None,
            })
            .expect("numeric range inferred");
        assert_eq!(range.valid_interval(), Some((Some(4), Some(255))));
        assert!(!range.is_valid(3));
        assert!(!range.is_valid(300));
        assert!(range.is_valid(100));
    }

    #[test]
    fn exit_guard_gives_invalid_high_range() {
        let kinds = constraints_of(
            r#"
            int threads = 4;
            struct opt { char* name; int* var; };
            struct opt options[] = { { "threads", &threads } };
            void startup() {
                if (threads > 16) { fprintf(stderr, "too many"); exit(1); }
                listen(0, threads);
            }
            "#,
            TABLE_ANN,
            "threads",
        );
        let range = kinds
            .iter()
            .find_map(|k| match k {
                ConstraintKind::Range(r) => Some(r),
                _ => None,
            })
            .expect("range inferred");
        assert!(!range.is_valid(100));
        assert!(range.is_valid(8));
    }

    #[test]
    fn table_row_min_max_resolution() {
        // PostgreSQL-style generic validation through table columns.
        let kinds = constraints_of(
            r#"
            int deadlock_timeout = 1000;
            struct opt { char* name; int* var; int min; int max; };
            struct opt options[] = { { "deadlock_timeout", &deadlock_timeout, 1, 600000 } };
            int validate(int i) {
                int v = deadlock_timeout;
                if (v < options[i].min) { return -1; }
                if (v > options[i].max) { return -1; }
                return 0;
            }
            "#,
            TABLE_ANN,
            "deadlock_timeout",
        );
        let range = kinds
            .iter()
            .find_map(|k| match k {
                ConstraintKind::Range(r) => Some(r),
                _ => None,
            })
            .expect("range inferred from table columns");
        assert_eq!(range.valid_interval(), Some((Some(1), Some(600000))));
    }

    #[test]
    fn switch_gives_enum_range_with_invalid_default() {
        let kinds = constraints_of(
            r#"
            int log_mode = 0;
            struct opt { char* name; int* var; };
            struct opt options[] = { { "log_mode", &log_mode } };
            void apply() {
                switch (log_mode) {
                    case 0: printf("off"); break;
                    case 1: printf("basic"); break;
                    case 2: printf("full"); break;
                    default: fprintf(stderr, "bad mode"); exit(1);
                }
            }
            "#,
            TABLE_ANN,
            "log_mode",
        );
        let e = kinds
            .iter()
            .find_map(|k| match k {
                ConstraintKind::EnumRange(e) => Some(e),
                _ => None,
            })
            .expect("enum range inferred");
        assert_eq!(e.alternatives.len(), 3);
        assert!(e.unmatched_is_error);
        assert!(e.alternatives.iter().all(|a| a.valid));
    }

    #[test]
    fn strcmp_chain_with_silent_overrule() {
        // Figure 6(c): Squid treats anything but "on" as off, silently.
        let kinds = constraints_of(
            r#"
            int use_icmp = 0;
            struct cmd { char* name; fnptr handler; };
            int parse_onoff(char* token) {
                if (strcasecmp(token, "on") == 0) { use_icmp = 1; }
                else { use_icmp = 0; }
                return 0;
            }
            struct cmd cmds[] = { { "icmp", parse_onoff } };
            void net() { listen(0, use_icmp); }
            "#,
            "{ @STRUCT = cmds\n @PAR = [cmd, 1]\n @VAR = ([cmd, 2], $token) }",
            "icmp",
        );
        let e = kinds
            .iter()
            .find_map(|k| match k {
                ConstraintKind::EnumRange(e) => Some(e),
                _ => None,
            })
            .expect("enum range inferred");
        assert_eq!(e.alternatives.len(), 1);
        assert!(matches!(&e.alternatives[0].value, EnumValue::Str(s) if s == "on"));
        assert!(e.case_insensitive);
        assert!(!e.unmatched_is_error, "silent overruling, not an error");
    }

    #[test]
    fn no_range_without_invalid_behavior() {
        let kinds = constraints_of(
            r#"
            int verbosity = 1;
            struct opt { char* name; int* var; };
            struct opt options[] = { { "verbosity", &verbosity } };
            void log_it() {
                if (verbosity > 2) { printf("debug"); }
            }
            "#,
            TABLE_ANN,
            "verbosity",
        );
        assert!(
            !kinds.iter().any(|k| matches!(k, ConstraintKind::Range(_))),
            "benign threshold must not produce a range constraint"
        );
    }
}
