//! Raw per-parameter evidence consumed by the error-prone-design detectors
//! (§3.2 of the paper).
//!
//! The detectors need more than the distilled constraints: which comparison
//! functions touched the parameter (case sensitivity), which conversion
//! APIs parsed it (unsafe-API detection), and where its storage is silently
//! overwritten (silent violation / overruling).

use crate::infer::branch::region_logs;
use spex_dataflow::{AnalyzedModule, MemLoc, TaintResult};
use spex_ir::{BlockId, Callee, FuncId, Instr};
use spex_lang::builtins::Builtin;
use spex_lang::diag::Span;

/// A string comparison applied to the parameter's value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StringCmpEvidence {
    /// The comparison builtin used.
    pub builtin: Builtin,
    /// Whether it ignores case.
    pub case_insensitive: bool,
    /// The literal compared against, when constant.
    pub literal: Option<String>,
    /// Containing function.
    pub in_function: String,
    /// Source location.
    pub span: Span,
}

/// A silent overwrite of the parameter's storage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResetEvidence {
    /// Containing function.
    pub in_function: String,
    /// Source location of the store.
    pub span: Span,
    /// Whether any log call appears in the same block's region.
    pub logged: bool,
}

/// Everything the design detectors need about one parameter.
#[derive(Debug, Clone, Default)]
pub struct Evidence {
    /// String comparisons on the value path.
    pub string_comparisons: Vec<StringCmpEvidence>,
    /// Unsafe transformation APIs applied to the value (`atoi`, `sscanf`,
    /// `sprintf`).
    pub unsafe_apis: Vec<(Builtin, String, Span)>,
    /// Safe transformation APIs applied to the value (`strtol` family).
    pub safe_apis: Vec<(Builtin, String, Span)>,
    /// Overwrites of the parameter's storage.
    pub resets: Vec<ResetEvidence>,
    /// Behavioural usage sites (function, block) — the denominator of the
    /// MAY-belief confidence, also used by the injection harness to decide
    /// whether a parameter is observable.
    pub usage_sites: Vec<(FuncId, BlockId)>,
}

/// Collects evidence for one parameter.
pub fn collect(
    am: &AnalyzedModule,
    _param: &crate::mapping::MappedParam,
    taint: &TaintResult,
) -> Evidence {
    let mut ev = Evidence::default();
    for fid in taint.touched_functions() {
        let func = am.module.func(fid);
        for (b, _, instr, span) in func.iter_instrs() {
            match instr {
                Instr::Call {
                    callee: Callee::Builtin(bi),
                    args,
                    dst,
                } => {
                    // A call is on the parameter's flow when an argument is
                    // tainted, or when its result is a taint root (the
                    // comparison-mapping case roots the conversion result).
                    let any_tainted = args.iter().any(|a| taint.is_tainted(fid, *a))
                        || dst.map(|d| taint.is_tainted(fid, d)).unwrap_or(false);
                    if !any_tainted {
                        continue;
                    }
                    if bi.is_string_comparison() {
                        let literal = args
                            .iter()
                            .find_map(|a| crate::mapping::const_str(am, fid, *a));
                        ev.string_comparisons.push(StringCmpEvidence {
                            builtin: *bi,
                            case_insensitive: bi.is_case_insensitive(),
                            literal,
                            in_function: func.name.clone(),
                            span,
                        });
                    }
                    if bi.is_unsafe_transform() {
                        ev.unsafe_apis.push((*bi, func.name.clone(), span));
                    }
                    if bi.is_safe_transform() {
                        ev.safe_apis.push((*bi, func.name.clone(), span));
                    }
                    if bi.is_behavioral_use() {
                        ev.usage_sites.push((fid, b));
                    }
                }
                Instr::Store { place, .. } => {
                    let hits = MemLoc::from_place(fid, place)
                        .map(|loc| taint.mem.keys().any(|l| l.may_alias(&loc)))
                        .unwrap_or(false);
                    if hits {
                        ev.resets.push(ResetEvidence {
                            in_function: func.name.clone(),
                            span,
                            logged: region_logs(am, fid, b),
                        });
                    }
                }
                Instr::Bin { lhs, rhs, .. }
                    if (taint.is_tainted(fid, *lhs) || taint.is_tainted(fid, *rhs)) =>
                {
                    ev.usage_sites.push((fid, b));
                }
                _ => {}
            }
        }
    }
    ev
}

#[cfg(test)]
mod tests {
    use crate::annotations::Annotation;
    use crate::infer::Spex;
    use spex_lang::builtins::Builtin;

    const TABLE_ANN: &str = "{ @STRUCT = options\n @PAR = [opt, 1]\n @VAR = [opt, 2] }";

    fn analyze(src: &str) -> crate::infer::SpexAnalysis {
        let p = spex_lang::parse_program(src).unwrap();
        let m = spex_ir::lower_program(&p).unwrap();
        let anns = Annotation::parse(TABLE_ANN).unwrap();
        Spex::analyze(m, &anns)
    }

    #[test]
    fn records_case_insensitive_comparison() {
        let a = analyze(
            r#"
            char* method = "fsync";
            struct opt { char* name; char* var; };
            struct opt options[] = { { "sync_method", &method } };
            void pick() {
                if (strcasecmp(method, "fsync") == 0) { printf("fsync"); }
            }
            "#,
        );
        let ev = &a.param("sync_method").unwrap().evidence;
        assert_eq!(ev.string_comparisons.len(), 1);
        assert!(ev.string_comparisons[0].case_insensitive);
        assert_eq!(ev.string_comparisons[0].literal.as_deref(), Some("fsync"));
    }

    #[test]
    fn records_unsafe_api_use() {
        let a = analyze(
            r#"
            char* raw = "100";
            struct opt { char* name; char* var; };
            struct opt options[] = { { "max_ranges", &raw } };
            void apply() { int v = atoi(raw); listen(0, v); }
            "#,
        );
        let ev = &a.param("max_ranges").unwrap().evidence;
        assert_eq!(ev.unsafe_apis.len(), 1);
        assert_eq!(ev.unsafe_apis[0].0, Builtin::Atoi);
        assert!(ev.safe_apis.is_empty());
    }

    #[test]
    fn records_silent_reset() {
        let a = analyze(
            r#"
            int intlen = 8;
            struct opt { char* name; int* var; };
            struct opt options[] = { { "intlen", &intlen } };
            void clamp() {
                if (intlen > 255) { intlen = 255; }
            }
            "#,
        );
        let ev = &a.param("intlen").unwrap().evidence;
        assert_eq!(ev.resets.len(), 1);
        assert!(!ev.resets[0].logged);
    }

    #[test]
    fn logged_reset_is_not_silent() {
        let a = analyze(
            r#"
            int intlen = 8;
            struct opt { char* name; int* var; };
            struct opt options[] = { { "intlen", &intlen } };
            void clamp() {
                if (intlen > 255) {
                    fprintf(stderr, "intlen too large, using 255");
                    intlen = 255;
                }
            }
            "#,
        );
        let ev = &a.param("intlen").unwrap().evidence;
        assert_eq!(ev.resets.len(), 1);
        assert!(ev.resets[0].logged);
    }
}
