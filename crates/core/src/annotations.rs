//! The annotation language of Figure 4.
//!
//! SPEX asks developers to annotate the *mapping interfaces* — not every
//! parameter — in one of three conventions (§2.2.1):
//!
//! ```text
//! { @STRUCT = ConfigureNamesInt          // structure-based, direct
//!   @PAR = [config_int, 1]
//!   @VAR = [config_int, 3] }
//!
//! { @STRUCT = core_cmds                  // structure-based, via function
//!   @PAR = [command_rec, 1]
//!   @VAR = ([command_rec, 2], $arg) }
//!
//! { @PARSER = loadServerConfig           // comparison-based
//!   @PAR = $argv[0]
//!   @VAR = $argv[1] }
//!
//! { @GETTER = get_i32                    // container-based
//!   @PAR = 1
//!   @VAR = $RET }
//! ```
//!
//! Field and argument indices are 1-based, matching the paper's figures.

/// A `$name` or `$name[i]` variable reference inside an annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarRef {
    /// Referenced function-parameter name.
    pub name: String,
    /// Optional constant index (`$argv[1]`).
    pub index: Option<u32>,
}

/// One parsed annotation block.
#[derive(Debug, Clone, PartialEq)]
pub enum Annotation {
    /// Structure-based mapping with a direct variable pointer field.
    StructDirect {
        /// Name of the global table variable.
        table: String,
        /// Element struct name.
        struct_name: String,
        /// 1-based field index holding the parameter name.
        par_field: u32,
        /// 1-based field index holding the pointer to the variable.
        var_field: u32,
    },
    /// Structure-based mapping through a parsing-function pointer field.
    StructFunction {
        /// Name of the global table variable.
        table: String,
        /// Element struct name.
        struct_name: String,
        /// 1-based field index holding the parameter name.
        par_field: u32,
        /// 1-based field index holding the handler function pointer.
        handler_field: u32,
        /// Name of the handler's parameter that carries the value.
        value_arg: String,
    },
    /// Comparison-based mapping inside a parsing function.
    Parser {
        /// The parsing function's name.
        function: String,
        /// Where the parameter name comes from.
        par: VarRef,
        /// Where the parameter value comes from.
        var: VarRef,
    },
    /// Container-based mapping through getter calls.
    Getter {
        /// The getter function's name.
        function: String,
        /// 1-based argument index of the parameter-name literal.
        par_arg: u32,
    },
}

impl Annotation {
    /// Parses a sequence of annotation blocks.
    ///
    /// Returns the blocks and fails with a message on malformed input.
    pub fn parse(text: &str) -> Result<Vec<Annotation>, String> {
        let mut out = Vec::new();
        let mut rest = text.trim();
        while !rest.is_empty() {
            let open = rest
                .find('{')
                .ok_or_else(|| format!("expected `{{` near: {}", head(rest)))?;
            let close = rest[open..]
                .find('}')
                .map(|i| i + open)
                .ok_or_else(|| "unterminated annotation block".to_string())?;
            let block = &rest[open + 1..close];
            out.push(Self::parse_block(block)?);
            rest = rest[close + 1..].trim();
        }
        Ok(out)
    }

    /// Number of annotation lines (the paper's "LoA" metric of Table 4).
    pub fn count_lines(text: &str) -> usize {
        text.lines().filter(|l| l.contains('@')).count()
    }

    fn parse_block(block: &str) -> Result<Annotation, String> {
        let mut kind: Option<(&str, String)> = None;
        let mut par: Option<String> = None;
        let mut var: Option<String> = None;
        for line in block.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("expected `@KEY = value`, got: {line}"))?;
            let key = key.trim();
            let value = value.trim().to_string();
            match key {
                "@STRUCT" | "@PARSER" | "@GETTER" => kind = Some((key, value)),
                "@PAR" => par = Some(value),
                "@VAR" => var = Some(value),
                other => return Err(format!("unknown annotation key `{other}`")),
            }
        }
        let (kind, subject) = kind.ok_or("missing @STRUCT/@PARSER/@GETTER")?;
        let par = par.ok_or("missing @PAR")?;
        match kind {
            "@STRUCT" => {
                let (sname, par_field) = parse_bracket(&par)?;
                let var = var.ok_or("missing @VAR")?;
                if let Some(inner) = var.strip_prefix('(') {
                    // ([struct, idx], $arg)
                    let inner = inner.strip_suffix(')').ok_or("unterminated `(` in @VAR")?;
                    let (bracket_part, arg_part) = inner
                        .rsplit_once(',')
                        .ok_or("expected `([struct, idx], $arg)`")?;
                    let (vsname, handler_field) = parse_bracket(bracket_part.trim())?;
                    if vsname != sname {
                        return Err(format!(
                            "struct mismatch between @PAR ({sname}) and @VAR ({vsname})"
                        ));
                    }
                    let value_arg = arg_part
                        .trim()
                        .strip_prefix('$')
                        .ok_or("handler argument must be `$name`")?
                        .to_string();
                    Ok(Annotation::StructFunction {
                        table: subject,
                        struct_name: sname,
                        par_field,
                        handler_field,
                        value_arg,
                    })
                } else {
                    let (vsname, var_field) = parse_bracket(&var)?;
                    if vsname != sname {
                        return Err(format!(
                            "struct mismatch between @PAR ({sname}) and @VAR ({vsname})"
                        ));
                    }
                    Ok(Annotation::StructDirect {
                        table: subject,
                        struct_name: sname,
                        par_field,
                        var_field,
                    })
                }
            }
            "@PARSER" => {
                let var = var.ok_or("missing @VAR")?;
                Ok(Annotation::Parser {
                    function: subject,
                    par: parse_varref(&par)?,
                    var: parse_varref(&var)?,
                })
            }
            "@GETTER" => {
                let par_arg: u32 = par
                    .parse()
                    .map_err(|_| format!("@PAR of a getter must be an argument index: {par}"))?;
                if let Some(var) = var {
                    if var != "$RET" {
                        return Err("getter @VAR must be $RET".to_string());
                    }
                }
                Ok(Annotation::Getter {
                    function: subject,
                    par_arg,
                })
            }
            _ => unreachable!("kind restricted above"),
        }
    }
}

/// Parses `[struct_name, index]`.
fn parse_bracket(s: &str) -> Result<(String, u32), String> {
    let inner = s
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("expected `[struct, index]`, got: {s}"))?;
    let (name, idx) = inner
        .split_once(',')
        .ok_or_else(|| format!("expected `[struct, index]`, got: {s}"))?;
    let idx: u32 = idx
        .trim()
        .parse()
        .map_err(|_| format!("bad field index in {s}"))?;
    if idx == 0 {
        return Err("field indices are 1-based".to_string());
    }
    Ok((name.trim().to_string(), idx))
}

/// Parses `$name` or `$name[i]`.
fn parse_varref(s: &str) -> Result<VarRef, String> {
    let body = s
        .strip_prefix('$')
        .ok_or_else(|| format!("expected `$name`, got: {s}"))?;
    if let Some((name, idx)) = body.split_once('[') {
        let idx = idx
            .strip_suffix(']')
            .ok_or_else(|| format!("unterminated index in {s}"))?
            .trim()
            .parse::<u32>()
            .map_err(|_| format!("bad index in {s}"))?;
        Ok(VarRef {
            name: name.trim().to_string(),
            index: Some(idx),
        })
    } else {
        Ok(VarRef {
            name: body.trim().to_string(),
            index: None,
        })
    }
}

fn head(s: &str) -> &str {
    &s[..s.len().min(30)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_struct_direct_annotation() {
        // PostgreSQL style, Figure 4(a).
        let anns = Annotation::parse(
            "{ @STRUCT = ConfigureNamesInt\n  @PAR = [config_int, 1]\n  @VAR = [config_int, 3] }",
        )
        .unwrap();
        assert_eq!(
            anns,
            vec![Annotation::StructDirect {
                table: "ConfigureNamesInt".into(),
                struct_name: "config_int".into(),
                par_field: 1,
                var_field: 3,
            }]
        );
    }

    #[test]
    fn parses_struct_function_annotation() {
        // Apache style, Figure 4(b).
        let anns = Annotation::parse(
            "{ @STRUCT = core_cmds\n  @PAR = [command_rec, 1]\n  @VAR = ([command_rec, 2], $arg) }",
        )
        .unwrap();
        assert_eq!(
            anns,
            vec![Annotation::StructFunction {
                table: "core_cmds".into(),
                struct_name: "command_rec".into(),
                par_field: 1,
                handler_field: 2,
                value_arg: "arg".into(),
            }]
        );
    }

    #[test]
    fn parses_parser_annotation() {
        // Redis style, Figure 4(c).
        let anns = Annotation::parse(
            "{ @PARSER = loadServerConfig\n  @PAR = $argv[0]\n  @VAR = $argv[1] }",
        )
        .unwrap();
        assert_eq!(
            anns,
            vec![Annotation::Parser {
                function: "loadServerConfig".into(),
                par: VarRef {
                    name: "argv".into(),
                    index: Some(0)
                },
                var: VarRef {
                    name: "argv".into(),
                    index: Some(1)
                },
            }]
        );
    }

    #[test]
    fn parses_getter_annotation() {
        // Hypertable style, Figure 4(d).
        let anns = Annotation::parse("{ @GETTER = get_i32\n  @PAR = 1\n  @VAR = $RET }").unwrap();
        assert_eq!(
            anns,
            vec![Annotation::Getter {
                function: "get_i32".into(),
                par_arg: 1,
            }]
        );
    }

    #[test]
    fn parses_multiple_blocks() {
        let anns =
            Annotation::parse("{ @GETTER = get_i32\n @PAR = 1 }\n{ @GETTER = get_str\n @PAR = 1 }")
                .unwrap();
        assert_eq!(anns.len(), 2);
    }

    #[test]
    fn rejects_malformed_blocks() {
        assert!(Annotation::parse("{ @PAR = 1 }").is_err());
        assert!(Annotation::parse("{ @STRUCT = t\n @PAR = [a, 0]\n @VAR = [a, 1] }").is_err());
        assert!(Annotation::parse("{ @STRUCT = t\n @PAR = [a, 1]\n @VAR = [b, 2] }").is_err());
        assert!(Annotation::parse("{ @GETTER = g\n @PAR = one }").is_err());
        assert!(Annotation::parse("{ @WHAT = x }").is_err());
    }

    #[test]
    fn counts_annotation_lines() {
        let text = "{ @STRUCT = t\n  @PAR = [a, 1]\n  @VAR = [a, 2] }";
        assert_eq!(Annotation::count_lines(text), 3);
    }

    #[test]
    fn plain_var_ref() {
        let anns =
            Annotation::parse("{ @PARSER = handle\n  @PAR = $name\n  @VAR = $value }").unwrap();
        match &anns[0] {
            Annotation::Parser { par, var, .. } => {
                assert_eq!(par.index, None);
                assert_eq!(par.name, "name");
                assert_eq!(var.name, "value");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
