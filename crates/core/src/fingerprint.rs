//! Stable fingerprints of lowered modules, for incremental re-inference.
//!
//! The workspace API re-runs constraint inference only over functions whose
//! bodies actually changed. Change detection hashes the *lowered* IR rather
//! than source text, so whitespace and comment edits never dirty a
//! function, while any edit that survives lowering does.
//!
//! Two kinds of fingerprints cover a module:
//!
//! * [`function_fingerprints`] — one hash per function, keyed by name,
//!   over the function's printed IR (value numbering is function-local, so
//!   an edit in one function never shifts another's hash);
//! * [`header_fingerprint`] — one hash over everything that is *not* a
//!   function body: globals (types and initializers), struct layouts and
//!   enum constants. Mapping extraction and declared-type fallbacks read
//!   these, so a header change invalidates all functions at once.

use spex_ir::printer::print_function;
use spex_ir::Module;
use std::collections::BTreeMap;
use std::fmt::Write;

/// 64-bit FNV-1a; deterministic across runs and platforms (no `RandomState`).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hashes every function body, keyed by function name.
///
/// Duplicate names (ill-formed modules) fold both bodies into one hash, so
/// a change to either dirties the name.
pub fn function_fingerprints(module: &Module) -> BTreeMap<String, u64> {
    let mut fps: BTreeMap<String, u64> = BTreeMap::new();
    for f in &module.functions {
        let text = print_function(f, module);
        let fp = fnv1a(text.as_bytes());
        fps.entry(f.name.clone())
            .and_modify(|prev| *prev = fnv1a(&[prev.to_le_bytes(), fp.to_le_bytes()].concat()))
            .or_insert(fp);
    }
    fps
}

/// Hashes the module's non-function surface: globals, struct layouts and
/// enum constants, in deterministic order.
pub fn header_fingerprint(module: &Module) -> u64 {
    let mut text = String::new();
    for g in &module.globals {
        let _ = writeln!(text, "global {} : {} = {:?}", g.name, g.ty, g.init);
    }
    for s in &module.structs {
        let _ = write!(text, "struct {} {{", s.name);
        for (fname, fty) in &s.fields {
            let _ = write!(text, " {fname}: {fty};");
        }
        let _ = writeln!(text, " }}");
    }
    let consts: BTreeMap<&str, i64> = module
        .enum_consts
        .iter()
        .map(|(k, v)| (k.as_str(), *v))
        .collect();
    for (k, v) in consts {
        let _ = writeln!(text, "enum {k} = {v}");
    }
    fnv1a(text.as_bytes())
}

/// The difference between two fingerprint maps: which function names must
/// be considered dirty for re-inference.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FingerprintDiff {
    /// Present in both maps with different hashes.
    pub changed: Vec<String>,
    /// Present only in the new map.
    pub added: Vec<String>,
    /// Present only in the old map.
    pub removed: Vec<String>,
}

impl FingerprintDiff {
    /// Whether the two maps are identical.
    pub fn is_empty(&self) -> bool {
        self.changed.is_empty() && self.added.is_empty() && self.removed.is_empty()
    }

    /// All dirty names — changed, added and removed — in sorted order.
    pub fn dirty_names(&self) -> Vec<String> {
        let mut all: Vec<String> = self
            .changed
            .iter()
            .chain(&self.added)
            .chain(&self.removed)
            .cloned()
            .collect();
        all.sort_unstable();
        all
    }
}

/// Diffs two fingerprint maps (old → new).
pub fn diff_fingerprints(
    old: &BTreeMap<String, u64>,
    new: &BTreeMap<String, u64>,
) -> FingerprintDiff {
    let mut diff = FingerprintDiff::default();
    for (name, fp) in new {
        match old.get(name) {
            None => diff.added.push(name.clone()),
            Some(prev) if prev != fp => diff.changed.push(name.clone()),
            Some(_) => {}
        }
    }
    for name in old.keys() {
        if !new.contains_key(name) {
            diff.removed.push(name.clone());
        }
    }
    diff
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lower(src: &str) -> Module {
        let p = spex_lang::parse_program(src).unwrap();
        spex_ir::lower_program(&p).unwrap()
    }

    const BASE: &str = r#"
        int threads = 4;
        void f() { if (threads > 8) { exit(1); } }
        void g() { sleep(threads); }
    "#;

    #[test]
    fn whitespace_and_comment_edits_do_not_dirty() {
        let a = function_fingerprints(&lower(BASE));
        let b = function_fingerprints(&lower(
            r#"
            int threads = 4;
            // a comment
            void f() {
                if (threads > 8) { exit(1); }
            }
            void g() { sleep(threads); }
            "#,
        ));
        assert_eq!(a, b);
    }

    #[test]
    fn editing_one_function_dirties_only_it() {
        let old = function_fingerprints(&lower(BASE));
        let new = function_fingerprints(&lower(
            r#"
            int threads = 4;
            void f() { if (threads > 8) { exit(1); } }
            void g() { sleep(threads); sleep(threads); }
            "#,
        ));
        let d = diff_fingerprints(&old, &new);
        assert_eq!(d.changed, vec!["g".to_string()]);
        assert!(d.added.is_empty() && d.removed.is_empty());
    }

    #[test]
    fn added_and_removed_functions_are_reported() {
        let old = function_fingerprints(&lower(BASE));
        let new = function_fingerprints(&lower(
            r#"
            int threads = 4;
            void f() { if (threads > 8) { exit(1); } }
            void h() { listen(0, threads); }
            "#,
        ));
        let d = diff_fingerprints(&old, &new);
        assert!(d.changed.is_empty());
        assert_eq!(d.added, vec!["h".to_string()]);
        assert_eq!(d.removed, vec!["g".to_string()]);
        assert_eq!(d.dirty_names(), vec!["g".to_string(), "h".to_string()]);
    }

    #[test]
    fn header_tracks_globals_not_bodies() {
        let base = header_fingerprint(&lower(BASE));
        let body_edit = header_fingerprint(&lower(
            r#"
            int threads = 4;
            void f() { exit(1); }
            void g() { sleep(threads); }
            "#,
        ));
        assert_eq!(base, body_edit, "body edits must not dirty the header");
        let global_edit = header_fingerprint(&lower(
            r#"
            int threads = 8;
            void f() { if (threads > 8) { exit(1); } }
            void g() { sleep(threads); }
            "#,
        ));
        assert_ne!(base, global_edit, "initializer edits must dirty the header");
    }
}
