//! Semantic signatures of known system and library APIs.
//!
//! SPEX "supports the high-level semantic types of most standard libraries"
//! (§2.2.2): when a parameter's data flow reaches a known call's argument,
//! the argument position's semantic type becomes a constraint. Projects can
//! import their own APIs (the paper did this for the commercial Storage-A
//! system); [`ApiSpec::with_custom`] mirrors that.

use crate::constraint::{SemType, SizeUnit, TimeUnit};
use spex_lang::builtins::Builtin;
use std::collections::HashMap;

/// Semantic meaning of one argument position of one API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArgSpec {
    /// Zero-based argument index.
    pub arg: usize,
    /// The semantic type conferred on values flowing into that argument.
    pub sem: SemType,
}

/// The registry of API semantic signatures.
#[derive(Debug, Clone, Default)]
pub struct ApiSpec {
    builtin_args: HashMap<Builtin, Vec<ArgSpec>>,
    /// Custom (project-imported) signatures for *defined* functions, by
    /// function name.
    custom_args: HashMap<String, Vec<ArgSpec>>,
    /// Builtins whose return value carries a semantic type (for the
    /// "compared or assigned with the return value of a known call"
    /// pattern, e.g. `time()`).
    builtin_ret: HashMap<Builtin, SemType>,
}

impl ApiSpec {
    /// The standard-library registry.
    pub fn standard() -> ApiSpec {
        use Builtin as B;
        use SemType as S;
        let mut spec = ApiSpec::default();
        let mut add = |b: Builtin, arg: usize, sem: SemType| {
            spec.builtin_args
                .entry(b)
                .or_default()
                .push(ArgSpec { arg, sem });
        };

        // Files and directories.
        add(B::Open, 0, S::FilePath);
        add(B::Fopen, 0, S::FilePath);
        add(B::Stat, 0, S::FilePath);
        add(B::Access, 0, S::FilePath);
        add(B::Unlink, 0, S::FilePath);
        add(B::Chmod, 0, S::FilePath);
        add(B::Chmod, 1, S::Permission);
        add(B::Mkdir, 0, S::DirPath);
        add(B::Mkdir, 1, S::Permission);
        add(B::Opendir, 0, S::DirPath);
        add(B::Chroot, 0, S::DirPath);

        // Networking.
        add(B::Bind, 1, S::Port);
        add(B::Htons, 0, S::Port);
        add(B::SockaddrSetPort, 1, S::Port);
        add(B::InetAddr, 0, S::IpAddr);
        add(B::Gethostbyname, 0, S::Hostname);
        add(B::Listen, 1, S::Size(SizeUnit::B)); // Backlog: a count, modelled as plain size.

        // Users and groups.
        add(B::Getpwnam, 0, S::UserName);
        add(B::Getgrnam, 0, S::GroupName);

        // Time.
        add(B::Sleep, 0, S::Time(TimeUnit::Sec));
        add(B::Alarm, 0, S::Time(TimeUnit::Sec));
        add(B::Usleep, 0, S::Time(TimeUnit::Micro));

        // Memory.
        add(B::Malloc, 0, S::Size(SizeUnit::B));
        add(B::Calloc, 1, S::Size(SizeUnit::B));

        spec.builtin_ret.insert(B::Time, S::Time(TimeUnit::Sec));
        spec
    }

    /// Extends the registry with custom signatures for defined functions
    /// (the paper's proprietary-API import, §2.2.2).
    pub fn with_custom(mut self, custom: impl IntoIterator<Item = (String, Vec<ArgSpec>)>) -> Self {
        for (name, args) in custom {
            self.custom_args.entry(name).or_default().extend(args);
        }
        self
    }

    /// Semantic type of a builtin's argument position, if known.
    pub fn builtin_arg(&self, b: Builtin, arg: usize) -> Option<SemType> {
        self.builtin_args
            .get(&b)?
            .iter()
            .find(|s| s.arg == arg)
            .map(|s| s.sem)
    }

    /// Semantic type of a defined function's argument position (custom
    /// imports only).
    pub fn custom_arg(&self, name: &str, arg: usize) -> Option<SemType> {
        self.custom_args
            .get(name)?
            .iter()
            .find(|s| s.arg == arg)
            .map(|s| s.sem)
    }

    /// Semantic type of a builtin's return value, if known.
    pub fn builtin_ret(&self, b: Builtin) -> Option<SemType> {
        self.builtin_ret.get(&b).copied()
    }

    /// Applies a constant multiplication factor observed on the data-flow
    /// path *before* the API call to refine a unit-carrying semantic type.
    ///
    /// Example (Figure 6b): `ap_max_mem_free = value * 1024` flowing into a
    /// byte-sized context means the parameter's unit is KB.
    pub fn scale_unit(sem: SemType, factor: i64) -> SemType {
        if factor <= 1 {
            return sem;
        }
        match sem {
            SemType::Size(base) => {
                let scaled = base.in_bytes().saturating_mul(factor);
                SizeUnit::from_bytes(scaled)
                    .map(SemType::Size)
                    .unwrap_or(sem)
            }
            SemType::Time(base) => {
                let scaled = base.in_micros().saturating_mul(factor);
                TimeUnit::from_micros(scaled)
                    .map(SemType::Time)
                    .unwrap_or(sem)
            }
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_and_port_signatures() {
        let spec = ApiSpec::standard();
        assert_eq!(spec.builtin_arg(Builtin::Open, 0), Some(SemType::FilePath));
        assert_eq!(spec.builtin_arg(Builtin::Bind, 1), Some(SemType::Port));
        assert_eq!(spec.builtin_arg(Builtin::Open, 1), None);
        assert_eq!(spec.builtin_arg(Builtin::Strcmp, 0), None);
    }

    #[test]
    fn time_signatures_carry_units() {
        let spec = ApiSpec::standard();
        assert_eq!(
            spec.builtin_arg(Builtin::Sleep, 0),
            Some(SemType::Time(TimeUnit::Sec))
        );
        assert_eq!(
            spec.builtin_arg(Builtin::Usleep, 0),
            Some(SemType::Time(TimeUnit::Micro))
        );
    }

    #[test]
    fn return_value_semantics() {
        let spec = ApiSpec::standard();
        assert_eq!(
            spec.builtin_ret(Builtin::Time),
            Some(SemType::Time(TimeUnit::Sec))
        );
        assert_eq!(spec.builtin_ret(Builtin::Open), None);
    }

    #[test]
    fn custom_import() {
        let spec = ApiSpec::standard().with_custom([(
            "wafl_set_volume".to_string(),
            vec![ArgSpec {
                arg: 0,
                sem: SemType::DirPath,
            }],
        )]);
        assert_eq!(
            spec.custom_arg("wafl_set_volume", 0),
            Some(SemType::DirPath)
        );
        assert_eq!(spec.custom_arg("unknown_fn", 0), None);
    }

    #[test]
    fn unit_scaling() {
        // value * 1024 into a byte API => parameter is KB.
        assert_eq!(
            ApiSpec::scale_unit(SemType::Size(SizeUnit::B), 1024),
            SemType::Size(SizeUnit::KB)
        );
        // value * 1024 * 1024.
        assert_eq!(
            ApiSpec::scale_unit(SemType::Size(SizeUnit::B), 1 << 20),
            SemType::Size(SizeUnit::MB)
        );
        // sleep(minutes * 60) => parameter is minutes.
        assert_eq!(
            ApiSpec::scale_unit(SemType::Time(TimeUnit::Sec), 60),
            SemType::Time(TimeUnit::Min)
        );
        // usleep(ms * 1000) => parameter is milliseconds.
        assert_eq!(
            ApiSpec::scale_unit(SemType::Time(TimeUnit::Micro), 1000),
            SemType::Time(TimeUnit::Milli)
        );
        // Unrecognised factors leave the unit unchanged.
        assert_eq!(
            ApiSpec::scale_unit(SemType::Size(SizeUnit::B), 7),
            SemType::Size(SizeUnit::B)
        );
        // Non-unit types are unaffected.
        assert_eq!(ApiSpec::scale_unit(SemType::Port, 1024), SemType::Port);
    }
}
