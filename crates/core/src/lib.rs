//! SPEX: automatic inference of configuration constraints from source code.
//!
//! This crate is the reproduction of the paper's core contribution (§2).
//! Given a lowered module and a handful of *annotations* describing how the
//! project maps configuration parameters to program variables (§2.2.1,
//! Figure 4), SPEX:
//!
//! 1. extracts the parameter→variable mapping using one of three template
//!    toolkits (structure-, comparison- and container-based);
//! 2. tracks each parameter's data flow with the engine from
//!    [`spex_dataflow`];
//! 3. infers five kinds of configuration constraints (§2.1, Figure 3):
//!    basic type, semantic type, data range, control dependency and value
//!    relationship.
//!
//! The results feed the misconfiguration-injection tester (`spex-inj`, §3.1)
//! and the error-prone-design detectors (`spex-design`, §3.2).
//!
//! # Examples
//!
//! ```
//! use spex_core::{annotations::Annotation, Spex};
//!
//! let src = r#"
//!     int listener_threads = 16;
//!     struct config_int { char* name; int* var; };
//!     struct config_int options[] = { { "listener-threads", &listener_threads } };
//!     void startup() {
//!         if (listener_threads > 16) { exit(1); }
//!         listen(0, listener_threads);
//!     }
//! "#;
//! let program = spex_lang::parse_program(src).unwrap();
//! let module = spex_ir::lower_program(&program).unwrap();
//! let ann = Annotation::parse(
//!     "{ @STRUCT = options\n  @PAR = [config_int, 1]\n  @VAR = [config_int, 2] }",
//! )
//! .unwrap();
//! let analysis = Spex::analyze(module, &ann);
//! let report = analysis.param("listener-threads").unwrap();
//! assert!(!report.constraints.is_empty());
//! ```

pub mod accuracy;
pub mod annotations;
pub mod apispec;
pub mod constraint;
pub mod fingerprint;
pub mod infer;
pub mod mapping;

pub use accuracy::{evaluate_accuracy, AccuracyReport};
pub use annotations::Annotation;
pub use constraint::{
    BasicType, CmpOp, Constraint, ConstraintKind, ControlDep, DiagCode, EnumAlternative, EnumValue,
    NumericRange, RangeSegment, SemType, SizeUnit, TimeUnit, ValueRel,
};
pub use fingerprint::{
    diff_fingerprints, function_fingerprints, header_fingerprint, FingerprintDiff,
};
pub use infer::{InferScope, ParamReport, PassCache, PassCounts, Spex, SpexAnalysis};
pub use mapping::MappedParam;
