//! A model of the system's user manual.
//!
//! The paper checks inferred constraints against "any form" of
//! documentation (manual entries, error messages, parameter naming). The
//! subject systems ship a structured manual model: per-parameter entries
//! recording what the documentation actually states.

use std::collections::HashMap;

/// Documentation of one parameter.
#[derive(Debug, Clone, Default)]
pub struct ManualEntry {
    /// Free-text description (searched for constraint mentions).
    pub text: String,
    /// Whether the valid value range is documented.
    pub documents_range: bool,
    /// Controller parameters whose dependency is documented.
    pub documents_deps: Vec<String>,
    /// Parameters whose value relationship is documented.
    pub documents_rels: Vec<String>,
}

/// The whole manual: parameter name → entry.
#[derive(Debug, Clone, Default)]
pub struct Manual {
    /// Entries by parameter name.
    pub entries: HashMap<String, ManualEntry>,
}

impl Manual {
    /// Creates an empty manual (nothing documented).
    pub fn empty() -> Manual {
        Manual::default()
    }

    /// Adds an entry.
    pub fn add(&mut self, param: &str, entry: ManualEntry) -> &mut Self {
        self.entries.insert(param.to_string(), entry);
        self
    }

    /// Whether the manual documents the range of `param`.
    pub fn documents_range(&self, param: &str) -> bool {
        self.entries
            .get(param)
            .map(|e| e.documents_range)
            .unwrap_or(false)
    }

    /// Whether the manual documents the dependency of `param` on
    /// `controller`.
    pub fn documents_dep(&self, param: &str, controller: &str) -> bool {
        self.entries
            .get(param)
            .map(|e| e.documents_deps.iter().any(|d| d == controller))
            .unwrap_or(false)
    }

    /// Whether the manual documents the relationship between `param` and
    /// `other`.
    pub fn documents_rel(&self, param: &str, other: &str) -> bool {
        self.entries
            .get(param)
            .map(|e| e.documents_rels.iter().any(|d| d == other))
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookups_on_empty_manual() {
        let m = Manual::empty();
        assert!(!m.documents_range("x"));
        assert!(!m.documents_dep("x", "y"));
        assert!(!m.documents_rel("x", "y"));
    }

    #[test]
    fn entry_lookups() {
        let mut m = Manual::empty();
        m.add(
            "commit_siblings",
            ManualEntry {
                text: "Takes effect only when fsync is on.".into(),
                documents_range: false,
                documents_deps: vec!["fsync".into()],
                documents_rels: vec![],
            },
        );
        assert!(m.documents_dep("commit_siblings", "fsync"));
        assert!(!m.documents_dep("commit_siblings", "other"));
        assert!(!m.documents_range("commit_siblings"));
    }
}
