//! Case-sensitivity inconsistency (Table 6, Figure 6a).
//!
//! "The case sensitivity is inferred by identifying string comparison
//! functions. If the parameter is used in comparison functions like
//! `strcasecmp`, it is case insensitive. Otherwise it is sensitive when
//! used in functions like `strcmp`." A system whose string parameters mix
//! both conventions confuses users (MySQL's `innodb_file_format_check` was
//! the paper's example).

use spex_core::SpexAnalysis;

/// Classification of one parameter's matching behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseSensitivity {
    /// Matched with `strcmp`/`strncmp`.
    Sensitive,
    /// Matched with `strcasecmp`/`strncasecmp`.
    Insensitive,
}

/// Per-system case-sensitivity report.
#[derive(Debug, Clone, Default)]
pub struct CaseReport {
    /// Case-sensitive parameters.
    pub sensitive: Vec<String>,
    /// Case-insensitive parameters.
    pub insensitive: Vec<String>,
}

impl CaseReport {
    /// Whether the system mixes conventions.
    pub fn is_inconsistent(&self) -> bool {
        !self.sensitive.is_empty() && !self.insensitive.is_empty()
    }

    /// The parameters on the minority side — the error-prone ones the
    /// paper reported to developers.
    pub fn minority(&self) -> &[String] {
        if self.sensitive.len() <= self.insensitive.len() {
            &self.sensitive
        } else {
            &self.insensitive
        }
    }

    /// Fraction of sensitive parameters (the Table 6 percentage).
    pub fn sensitive_share(&self) -> f64 {
        let total = self.sensitive.len() + self.insensitive.len();
        if total == 0 {
            0.0
        } else {
            self.sensitive.len() as f64 / total as f64
        }
    }
}

/// Classifies every parameter that is matched against string literals.
pub fn detect(analysis: &SpexAnalysis) -> CaseReport {
    let mut report = CaseReport::default();
    for r in &analysis.reports {
        let comparisons = &r.evidence.string_comparisons;
        // Only comparisons against literals express a matching convention.
        let relevant: Vec<_> = comparisons.iter().filter(|c| c.literal.is_some()).collect();
        if relevant.is_empty() {
            continue;
        }
        // One case-sensitive comparison makes the parameter sensitive: a
        // user typing the wrong case will miss that arm.
        if relevant.iter().any(|c| !c.case_insensitive) {
            report.sensitive.push(r.param.name.clone());
        } else {
            report.insensitive.push(r.param.name.clone());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use spex_core::{Annotation, Spex};

    fn analyze(src: &str, ann: &str) -> SpexAnalysis {
        let p = spex_lang::parse_program(src).unwrap();
        let m = spex_ir::lower_program(&p).unwrap();
        let anns = Annotation::parse(ann).unwrap();
        Spex::analyze(m, &anns)
    }

    #[test]
    fn detects_mixed_conventions() {
        // MySQL-style: most enum options insensitive, one sensitive.
        let a = analyze(
            r#"
            char* format_check = "Antelope";
            char* sql_mode = "strict";
            struct opt { char* name; char* var; };
            struct opt options[] = {
                { "innodb_file_format_check", &format_check },
                { "sql_mode", &sql_mode }
            };
            void apply() {
                if (strcmp(format_check, "Antelope") == 0) { printf("a"); }
                if (strcasecmp(sql_mode, "strict") == 0) { printf("s"); }
            }
            "#,
            "{ @STRUCT = options\n @PAR = [opt, 1]\n @VAR = [opt, 2] }",
        );
        let r = detect(&a);
        assert_eq!(r.sensitive, vec!["innodb_file_format_check".to_string()]);
        assert_eq!(r.insensitive, vec!["sql_mode".to_string()]);
        assert!(r.is_inconsistent());
        assert_eq!(r.minority(), &["innodb_file_format_check".to_string()]);
        assert!((r.sensitive_share() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn uniform_system_is_consistent() {
        let a = analyze(
            r#"
            char* m1 = "on";
            char* m2 = "off";
            struct opt { char* name; char* var; };
            struct opt options[] = { { "p1", &m1 }, { "p2", &m2 } };
            void apply() {
                if (strcasecmp(m1, "on") == 0) { printf("1"); }
                if (strcasecmp(m2, "on") == 0) { printf("2"); }
            }
            "#,
            "{ @STRUCT = options\n @PAR = [opt, 1]\n @VAR = [opt, 2] }",
        );
        let r = detect(&a);
        assert!(!r.is_inconsistent());
        assert_eq!(r.insensitive.len(), 2);
    }

    #[test]
    fn numeric_params_are_not_classified() {
        let a = analyze(
            r#"
            int n = 1;
            struct opt { char* name; int* var; };
            struct opt options[] = { { "n", &n } };
            void apply() { sleep(n); }
            "#,
            "{ @STRUCT = options\n @PAR = [opt, 1]\n @VAR = [opt, 2] }",
        );
        let r = detect(&a);
        assert!(r.sensitive.is_empty());
        assert!(r.insensitive.is_empty());
    }
}
