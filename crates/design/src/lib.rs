//! Error-prone configuration-design detection (§3.2 of the paper).
//!
//! Configuration is a user interface; it should be *consistent*, *explicit*
//! and *documented*. This crate turns the constraints and raw evidence
//! produced by `spex-core` into the paper's four detector families:
//!
//! * **case-sensitivity inconsistency** (Table 6) — string parameters whose
//!   comparison functions disagree with the system's dominant convention;
//! * **unit inconsistency** (Table 7) — size/time parameters whose units
//!   diverge from the dominant unit;
//! * **silent overruling** (Figure 6c) — unmatched enum input silently
//!   coerced to a default;
//! * **unsafe parsing APIs** (Figure 6d) — `atoi`/`sscanf`/`sprintf`
//!   applied to untrusted configuration input;
//! * **undocumented constraints** — inferred ranges/dependencies/relations
//!   that the user manual never mentions.

pub mod case_sensitivity;
pub mod manual;
pub mod overruling;
pub mod undocumented;
pub mod units;
pub mod unsafe_api;

pub use case_sensitivity::{CaseReport, CaseSensitivity};
pub use manual::{Manual, ManualEntry};
pub use overruling::OverrulingFinding;
pub use undocumented::UndocumentedReport;
pub use units::UnitReport;
pub use unsafe_api::UnsafeApiFinding;

use spex_core::SpexAnalysis;

/// Aggregated design report for one system (the per-system rows of
/// Tables 6–8).
#[derive(Debug, Clone, Default)]
pub struct DesignReport {
    /// Case-sensitivity classification (Table 6).
    pub case: CaseReport,
    /// Unit distribution (Table 7).
    pub units: UnitReport,
    /// Silent-overruling findings (Table 8).
    pub overruling: Vec<OverrulingFinding>,
    /// Unsafe-API findings (Table 8).
    pub unsafe_apis: Vec<UnsafeApiFinding>,
    /// Undocumented-constraint counts (Table 8).
    pub undocumented: UndocumentedReport,
}

impl DesignReport {
    /// Runs every detector over an analysis.
    pub fn analyze(analysis: &SpexAnalysis, manual: &Manual) -> DesignReport {
        DesignReport {
            case: case_sensitivity::detect(analysis),
            units: units::detect(analysis),
            overruling: overruling::detect(analysis),
            unsafe_apis: unsafe_api::detect(analysis),
            undocumented: undocumented::detect(analysis, manual),
        }
    }
}
