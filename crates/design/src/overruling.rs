//! Silent overruling (Figure 6c).
//!
//! "Silent overruling refers to the case that the system changes an
//! unacceptable user setting into the default value without notifying the
//! user." Detection: an enumerative range whose unmatched arm silently
//! overwrites the parameter. Squid's boolean parser — anything but "on"
//! becomes off, even "yes" — affected 73 parameters through one code
//! location.

use spex_core::constraint::ConstraintKind;
use spex_core::SpexAnalysis;
use spex_lang::diag::Span;

/// One silently-overruled parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverrulingFinding {
    /// The affected parameter.
    pub param: String,
    /// Function containing the overruling store.
    pub in_function: String,
    /// Location of the store.
    pub span: Span,
}

/// Finds parameters whose unmatched enum input is silently coerced: the
/// fall-through arm assigns the same variable the match arms assign, with
/// no error path and no log message.
pub fn detect(analysis: &SpexAnalysis) -> Vec<OverrulingFinding> {
    let mut out = Vec::new();
    for r in &analysis.reports {
        let silent_enum = r.constraints.iter().find(|c| {
            matches!(&c.kind, ConstraintKind::EnumRange(e)
                if !e.unmatched_is_error
                    && e.unmatched_overwrites
                    && !e.alternatives.is_empty())
        });
        if let Some(c) = silent_enum {
            out.push(OverrulingFinding {
                param: r.param.name.clone(),
                in_function: c.in_function.clone(),
                span: c.span,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spex_core::{Annotation, Spex};

    fn analyze(src: &str, ann: &str) -> SpexAnalysis {
        let p = spex_lang::parse_program(src).unwrap();
        let m = spex_ir::lower_program(&p).unwrap();
        let anns = Annotation::parse(ann).unwrap();
        Spex::analyze(m, &anns)
    }

    #[test]
    fn detects_squid_style_boolean_overruling() {
        // Figure 6(c): anything that is not "on" silently becomes off.
        let a = analyze(
            r#"
            int icp_enabled = 0;
            struct cmd { char* name; fnptr handler; };
            int parse_onoff(char* token) {
                if (strcasecmp(token, "on") == 0) { icp_enabled = 1; }
                else { icp_enabled = 0; }
                return 0;
            }
            struct cmd cmds[] = { { "icp_enabled", parse_onoff } };
            void net() { listen(0, icp_enabled); }
            "#,
            "{ @STRUCT = cmds\n @PAR = [cmd, 1]\n @VAR = ([cmd, 2], $token) }",
        );
        let findings = detect(&a);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].param, "icp_enabled");
        assert_eq!(findings[0].in_function, "parse_onoff");
    }

    #[test]
    fn logged_fallback_is_not_overruling() {
        let a = analyze(
            r#"
            int icp_enabled = 0;
            struct cmd { char* name; fnptr handler; };
            int parse_onoff(char* token) {
                if (strcasecmp(token, "on") == 0) { icp_enabled = 1; }
                else {
                    fprintf(stderr, "unknown boolean %s, using off", token);
                    icp_enabled = 0;
                }
                return 0;
            }
            struct cmd cmds[] = { { "icp_enabled", parse_onoff } };
            void net() { listen(0, icp_enabled); }
            "#,
            "{ @STRUCT = cmds\n @PAR = [cmd, 1]\n @VAR = ([cmd, 2], $token) }",
        );
        // The reset is logged, so the else-arm is loud: no finding.
        assert!(detect(&a).is_empty());
    }

    #[test]
    fn numeric_params_are_not_flagged() {
        let a = analyze(
            r#"
            int n = 1;
            struct opt { char* name; int* var; };
            struct opt options[] = { { "n", &n } };
            void f() { if (n > 9) { n = 9; } sleep(n); }
            "#,
            "{ @STRUCT = options\n @PAR = [opt, 1]\n @VAR = [opt, 2] }",
        );
        // A numeric clamp is a silent violation at injection time but not
        // an enum overruling.
        assert!(detect(&a).is_empty());
    }
}
