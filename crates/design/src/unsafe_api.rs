//! Unsafe parsing APIs (Figure 6d).
//!
//! "Unsafe string-to-number transformation APIs, including `atoi`,
//! `sscanf` and `sprintf`, are vulnerable to erroneous user inputs. [...]
//! Most bug detection tools do not report these vulnerabilities because
//! they cannot know whether a variable comes from user settings. SPEX can
//! detect them exactly because it is starting from parameter settings."

use spex_core::SpexAnalysis;
use spex_lang::builtins::Builtin;
use spex_lang::diag::Span;

/// One unsafe-API use on a parameter's data-flow path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsafeApiFinding {
    /// The affected parameter.
    pub param: String,
    /// The unsafe API.
    pub api: Builtin,
    /// Function containing the call.
    pub in_function: String,
    /// Location of the call.
    pub span: Span,
}

/// Finds unsafe transformation APIs applied to configuration input.
pub fn detect(analysis: &SpexAnalysis) -> Vec<UnsafeApiFinding> {
    let mut out = Vec::new();
    for r in &analysis.reports {
        for (api, in_function, span) in &r.evidence.unsafe_apis {
            out.push(UnsafeApiFinding {
                param: r.param.name.clone(),
                api: *api,
                in_function: in_function.clone(),
                span: *span,
            });
        }
    }
    out
}

/// Parameters affected (deduplicated), the Table 8 count.
pub fn affected_params(findings: &[UnsafeApiFinding]) -> Vec<&str> {
    let mut params: Vec<&str> = findings.iter().map(|f| f.param.as_str()).collect();
    params.sort_unstable();
    params.dedup();
    params
}

#[cfg(test)]
mod tests {
    use super::*;
    use spex_core::{Annotation, Spex};

    fn analyze(src: &str, ann: &str) -> SpexAnalysis {
        let p = spex_lang::parse_program(src).unwrap();
        let m = spex_ir::lower_program(&p).unwrap();
        let anns = Annotation::parse(ann).unwrap();
        Spex::analyze(m, &anns)
    }

    #[test]
    fn flags_atoi_and_sscanf_on_config_paths() {
        let a = analyze(
            r#"
            int a_val = 0;
            int b_val = 0;
            struct cmd { char* name; fnptr handler; };
            int set_a(char* v) { a_val = atoi(v); return 0; }
            int set_b(char* v) {
                int i = 0;
                sscanf(v, "%i", &i);
                b_val = i;
                return 0;
            }
            struct cmd cmds[] = { { "a", set_a }, { "b", set_b } };
            void go() { listen(0, a_val + b_val); }
            "#,
            "{ @STRUCT = cmds\n @PAR = [cmd, 1]\n @VAR = ([cmd, 2], $v) }",
        );
        let findings = detect(&a);
        assert!(findings
            .iter()
            .any(|f| f.param == "a" && f.api == Builtin::Atoi));
        assert!(findings
            .iter()
            .any(|f| f.param == "b" && f.api == Builtin::Sscanf));
        assert_eq!(affected_params(&findings), vec!["a", "b"]);
    }

    #[test]
    fn safe_strtol_is_not_flagged() {
        let a = analyze(
            r#"
            long n_val = 0;
            struct cmd { char* name; fnptr handler; };
            int set_n(char* v) { n_val = strtol(v, NULL, 10); return 0; }
            struct cmd cmds[] = { { "n", set_n } };
            void go() { sleep(n_val); }
            "#,
            "{ @STRUCT = cmds\n @PAR = [cmd, 1]\n @VAR = ([cmd, 2], $v) }",
        );
        assert!(detect(&a).is_empty());
    }

    #[test]
    fn atoi_outside_config_flow_is_not_flagged() {
        // SPEX's selling point: only *parameter* data flows count.
        let a = analyze(
            r#"
            int knob = 1;
            struct opt { char* name; int* var; };
            struct opt options[] = { { "knob", &knob } };
            int unrelated(char* s) { return atoi(s); }
            void go() { sleep(knob); }
            "#,
            "{ @STRUCT = options\n @PAR = [opt, 1]\n @VAR = [opt, 2] }",
        );
        assert!(detect(&a).is_empty());
    }
}
