//! Unit-granularity inconsistency (Table 7, Figure 6b).
//!
//! Size parameters should share one unit, and so should time parameters.
//! The unit is inferred from the consuming API (with data-flow scaling
//! applied by `spex-core`): most Apache sizes are bytes, so `MaxMemFree`
//! in kilobytes is a trap.

use spex_core::constraint::{ConstraintKind, SemType, SizeUnit, TimeUnit};
use spex_core::SpexAnalysis;
use std::collections::BTreeMap;

/// Per-system unit distribution.
#[derive(Debug, Clone, Default)]
pub struct UnitReport {
    /// Size-parameter names per unit.
    pub sizes: BTreeMap<SizeUnit, Vec<String>>,
    /// Time-parameter names per unit.
    pub times: BTreeMap<TimeUnit, Vec<String>>,
}

impl UnitReport {
    /// Whether size units are mixed.
    pub fn size_inconsistent(&self) -> bool {
        self.sizes.values().filter(|v| !v.is_empty()).count() > 1
    }

    /// Whether time units are mixed.
    pub fn time_inconsistent(&self) -> bool {
        self.times.values().filter(|v| !v.is_empty()).count() > 1
    }

    /// Size parameters not using the dominant size unit.
    pub fn size_minority(&self) -> Vec<&String> {
        minority(&self.sizes)
    }

    /// Time parameters not using the dominant time unit.
    pub fn time_minority(&self) -> Vec<&String> {
        minority(&self.times)
    }

    /// Count of size parameters with unit `u` (a Table 7 cell).
    pub fn size_count(&self, u: SizeUnit) -> usize {
        self.sizes.get(&u).map(|v| v.len()).unwrap_or(0)
    }

    /// Count of time parameters with unit `u` (a Table 7 cell).
    pub fn time_count(&self, u: TimeUnit) -> usize {
        self.times.get(&u).map(|v| v.len()).unwrap_or(0)
    }
}

fn minority<K: Ord + Copy>(map: &BTreeMap<K, Vec<String>>) -> Vec<&String> {
    let dominant = map.iter().max_by_key(|(_, v)| v.len()).map(|(k, _)| *k);
    map.iter()
        .filter(|(k, _)| Some(**k) != dominant)
        .flat_map(|(_, v)| v.iter())
        .collect()
}

/// Tabulates size/time units across all parameters.
pub fn detect(analysis: &SpexAnalysis) -> UnitReport {
    let mut report = UnitReport::default();
    for r in &analysis.reports {
        for c in &r.constraints {
            if let ConstraintKind::SemanticType(st) = &c.kind {
                match st {
                    SemType::Size(u) => report
                        .sizes
                        .entry(*u)
                        .or_default()
                        .push(r.param.name.clone()),
                    SemType::Time(u) => report
                        .times
                        .entry(*u)
                        .or_default()
                        .push(r.param.name.clone()),
                    _ => {}
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use spex_core::{Annotation, Spex};

    fn analyze(src: &str) -> SpexAnalysis {
        let p = spex_lang::parse_program(src).unwrap();
        let m = spex_ir::lower_program(&p).unwrap();
        let anns =
            Annotation::parse("{ @STRUCT = options\n @PAR = [opt, 1]\n @VAR = [opt, 2] }").unwrap();
        Spex::analyze(m, &anns)
    }

    #[test]
    fn detects_mixed_size_units() {
        // Apache-style: most sizes in bytes, MaxMemFree in KB (Figure 6b).
        let a = analyze(
            r#"
            int send_buf = 8192;
            int recv_buf = 8192;
            int max_mem_free = 2048;
            struct opt { char* name; int* var; };
            struct opt options[] = {
                { "SendBufferSize", &send_buf },
                { "ReceiveBufferSize", &recv_buf },
                { "MaxMemFree", &max_mem_free }
            };
            void apply() {
                malloc(send_buf);
                malloc(recv_buf);
                malloc(max_mem_free * 1024);
            }
            "#,
        );
        let r = detect(&a);
        assert!(r.size_inconsistent());
        assert_eq!(r.size_count(SizeUnit::B), 2);
        assert_eq!(r.size_count(SizeUnit::KB), 1);
        let minority: Vec<&str> = r.size_minority().iter().map(|s| s.as_str()).collect();
        assert_eq!(minority, vec!["MaxMemFree"]);
    }

    #[test]
    fn detects_mixed_time_units() {
        let a = analyze(
            r#"
            int conn_timeout = 30;
            int poll_interval = 500;
            struct opt { char* name; int* var; };
            struct opt options[] = {
                { "conn_timeout", &conn_timeout },
                { "poll_interval_ms", &poll_interval }
            };
            void run() {
                sleep(conn_timeout);
                usleep(poll_interval * 1000);
            }
            "#,
        );
        let r = detect(&a);
        assert!(r.time_inconsistent());
        assert_eq!(r.time_count(TimeUnit::Sec), 1);
        assert_eq!(r.time_count(TimeUnit::Milli), 1);
        assert!(!r.size_inconsistent());
    }

    #[test]
    fn uniform_units_are_consistent() {
        let a = analyze(
            r#"
            int t1 = 1;
            int t2 = 2;
            struct opt { char* name; int* var; };
            struct opt options[] = { { "t1", &t1 }, { "t2", &t2 } };
            void run() { sleep(t1); sleep(t2); }
            "#,
        );
        let r = detect(&a);
        assert!(!r.time_inconsistent());
        assert!(r.time_minority().is_empty());
    }
}
