//! Undocumented constraints (Table 8, right-hand columns).
//!
//! "The inferred constraints are also useful for developers to check
//! whether the constraints are documented in any form. [...] Some
//! configuration constraints have never been documented in any form. As
//! the consequence, users can easily make mistakes with them." (The
//! OpenLDAP `index_intlen` clamp of Figure 3d was undocumented.)

use crate::manual::Manual;
use spex_core::constraint::ConstraintKind;
use spex_core::SpexAnalysis;

/// Undocumented-constraint counts and the offending parameters.
#[derive(Debug, Clone, Default)]
pub struct UndocumentedReport {
    /// Parameters with an undocumented data range.
    pub ranges: Vec<String>,
    /// `(dependent, controller)` pairs with an undocumented control
    /// dependency.
    pub control_deps: Vec<(String, String)>,
    /// `(lhs, rhs)` pairs with an undocumented value relationship.
    pub value_rels: Vec<(String, String)>,
}

impl UndocumentedReport {
    /// The three Table 8 cells: range / control-dep / value-rel counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        (
            self.ranges.len(),
            self.control_deps.len(),
            self.value_rels.len(),
        )
    }
}

/// Compares inferred constraints against the manual.
pub fn detect(analysis: &SpexAnalysis, manual: &Manual) -> UndocumentedReport {
    let mut report = UndocumentedReport::default();
    for r in &analysis.reports {
        for c in &r.constraints {
            match &c.kind {
                ConstraintKind::Range(_) | ConstraintKind::EnumRange(_)
                    if !manual.documents_range(&c.param) && !report.ranges.contains(&c.param) =>
                {
                    report.ranges.push(c.param.clone());
                }
                ConstraintKind::ControlDep(d)
                    if !manual.documents_dep(&d.dependent, &d.controller) =>
                {
                    let pair = (d.dependent.clone(), d.controller.clone());
                    if !report.control_deps.contains(&pair) {
                        report.control_deps.push(pair);
                    }
                }
                ConstraintKind::ValueRel(v)
                    if !manual.documents_rel(&v.lhs, &v.rhs)
                        && !manual.documents_rel(&v.rhs, &v.lhs) =>
                {
                    let pair = (v.lhs.clone(), v.rhs.clone());
                    if !report.value_rels.contains(&pair) {
                        report.value_rels.push(pair);
                    }
                }
                _ => {}
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manual::ManualEntry;
    use spex_core::{Annotation, Spex};

    fn analyze(src: &str) -> SpexAnalysis {
        let p = spex_lang::parse_program(src).unwrap();
        let m = spex_ir::lower_program(&p).unwrap();
        let anns =
            Annotation::parse("{ @STRUCT = options\n @PAR = [opt, 1]\n @VAR = [opt, 2] }").unwrap();
        Spex::analyze(m, &anns)
    }

    const SRC: &str = r#"
        int intlen = 8;
        int fsync_on = 1;
        int siblings = 5;
        struct opt { char* name; int* var; };
        struct opt options[] = {
            { "index_intlen", &intlen },
            { "fsync", &fsync_on },
            { "commit_siblings", &siblings }
        };
        void clamp() {
            if (intlen < 4) { intlen = 4; }
            else if (intlen > 255) { intlen = 255; }
        }
        void commit() {
            if (fsync_on) { sleep(siblings); }
        }
    "#;

    #[test]
    fn everything_undocumented_with_empty_manual() {
        let a = analyze(SRC);
        let r = detect(&a, &Manual::empty());
        assert_eq!(r.ranges, vec!["index_intlen".to_string()]);
        assert_eq!(
            r.control_deps,
            vec![("commit_siblings".to_string(), "fsync".to_string())]
        );
    }

    #[test]
    fn documented_constraints_are_not_reported() {
        let a = analyze(SRC);
        let mut manual = Manual::empty();
        manual.add(
            "index_intlen",
            ManualEntry {
                text: "Valid range is 4 to 255.".into(),
                documents_range: true,
                ..Default::default()
            },
        );
        manual.add(
            "commit_siblings",
            ManualEntry {
                text: "Only effective when fsync is enabled.".into(),
                documents_deps: vec!["fsync".into()],
                ..Default::default()
            },
        );
        let r = detect(&a, &manual);
        assert_eq!(r.counts(), (0, 0, 0));
    }
}
