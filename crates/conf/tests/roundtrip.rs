//! Round-trip edge cases for the configuration abstract representation.
//!
//! The AR's contract is that parse → mutate → serialize never loses
//! content the user wrote: comments, blank lines, malformed lines,
//! duplicate settings and multi-argument directives all survive, in every
//! dialect.

use spex_conf::{ConfFile, Dialect, Entry};

const ALL_DIALECTS: [Dialect; 3] = [
    Dialect::KeyValue,
    Dialect::Directive,
    Dialect::SpaceSeparated,
];

fn line(dialect: Dialect, name: &str, value: &str) -> String {
    match dialect {
        Dialect::KeyValue => format!("{name} = {value}"),
        Dialect::Directive | Dialect::SpaceSeparated => format!("{name} {value}"),
    }
}

#[test]
fn comments_and_blank_lines_survive_in_every_dialect() {
    for dialect in ALL_DIALECTS {
        let text = format!(
            "# leading comment\n\n; semicolon comment\n{}\n\n# trailing\n",
            line(dialect, "alpha", "1")
        );
        let conf = ConfFile::parse(&text, dialect);
        assert_eq!(conf.serialize(), text, "{dialect:?}: lossy round-trip");
        // The structure is what we expect, not an accident of serialization.
        assert!(matches!(conf.entries[0], Entry::Comment(_)));
        assert!(matches!(conf.entries[1], Entry::Blank));
        assert!(matches!(conf.entries[2], Entry::Comment(_)));
        assert!(matches!(conf.entries[3], Entry::Setting { .. }));
        assert!(matches!(conf.entries[4], Entry::Blank));
    }
}

#[test]
fn comments_survive_mutation() {
    for dialect in ALL_DIALECTS {
        let text = format!("# keep me\n{}\n", line(dialect, "alpha", "1"));
        let mut conf = ConfFile::parse(&text, dialect);
        conf.set("alpha", "2");
        let out = conf.serialize();
        assert!(out.contains("# keep me"), "{dialect:?}: comment dropped");
        assert_eq!(conf.get("alpha"), Some("2"));
    }
}

#[test]
fn multi_arg_directives_round_trip() {
    let text = "Listen 0.0.0.0 8080\nCustomLog /var/log/access.log combined env=ok\n";
    let conf = ConfFile::parse(text, Dialect::Directive);
    assert_eq!(conf.serialize(), text);
    match &conf.entries[1] {
        Entry::Setting { name, args } => {
            assert_eq!(name, "CustomLog");
            assert_eq!(
                args,
                &vec![
                    "/var/log/access.log".to_string(),
                    "combined".to_string(),
                    "env=ok".to_string()
                ]
            );
        }
        other => panic!("unexpected entry {other:?}"),
    }
    // `get` observes the first argument only.
    assert_eq!(conf.get("CustomLog"), Some("/var/log/access.log"));
}

#[test]
fn duplicate_keys_are_preserved_in_order() {
    for dialect in ALL_DIALECTS {
        let text = format!(
            "{}\n{}\n{}\n",
            line(dialect, "include", "a.conf"),
            line(dialect, "other", "1"),
            line(dialect, "include", "b.conf"),
        );
        let conf = ConfFile::parse(&text, dialect);
        assert_eq!(conf.serialize(), text, "{dialect:?}");
        let includes: Vec<&str> = conf
            .settings()
            .filter(|(n, _)| *n == "include")
            .map(|(_, v)| v)
            .collect();
        assert_eq!(includes, vec!["a.conf", "b.conf"], "{dialect:?}");
        // `get` sees the first occurrence; `line_of` pinpoints it.
        assert_eq!(conf.get("include"), Some("a.conf"));
        assert_eq!(conf.line_of("include"), Some(1));
    }
}

#[test]
fn set_on_duplicate_keys_rewrites_the_first_only() {
    let mut conf = ConfFile::parse("a 1\na 2\n", Dialect::SpaceSeparated);
    assert!(conf.set("a", "9"));
    assert_eq!(conf.serialize(), "a 9\na 2\n");
}

#[test]
fn set_on_a_missing_key_appends_in_dialect_syntax() {
    for dialect in ALL_DIALECTS {
        let text = format!("{}\n", line(dialect, "existing", "1"));
        let mut conf = ConfFile::parse(&text, dialect);
        assert!(!conf.set("fresh", "42"), "{dialect:?}: reported a replace");
        assert_eq!(conf.get("fresh"), Some("42"));
        let out = conf.serialize();
        assert_eq!(out, format!("{text}{}\n", line(dialect, "fresh", "42")));
        // The appended entry round-trips like any other.
        let reparsed = ConfFile::parse(&out, dialect);
        assert_eq!(reparsed.get("fresh"), Some("42"));
        assert_eq!(reparsed.serialize(), out);
    }
}

#[test]
fn remove_then_set_moves_the_setting_to_the_end() {
    let mut conf = ConfFile::parse("a = 1\nb = 2\n", Dialect::KeyValue);
    assert_eq!(conf.remove("a"), 1);
    conf.set("a", "3");
    assert_eq!(conf.serialize(), "b = 2\na = 3\n");
}

#[test]
fn malformed_lines_round_trip_in_every_dialect() {
    // A key-value line without `=` is malformed in that dialect but must
    // survive verbatim; in the whitespace dialects everything with a first
    // word parses, so use an empty-value marker instead.
    let kv = ConfFile::parse("just_a_word\nx = 1\n", Dialect::KeyValue);
    assert_eq!(kv.serialize(), "just_a_word\nx = 1\n");
    assert_eq!(kv.get("just_a_word"), None);

    for dialect in [Dialect::Directive, Dialect::SpaceSeparated] {
        let conf = ConfFile::parse("lonely\n", dialect);
        assert_eq!(conf.serialize(), "lonely\n");
        // Parsed as a setting with no arguments.
        assert_eq!(conf.get("lonely"), None);
        assert!(matches!(&conf.entries[0], Entry::Setting { args, .. } if args.is_empty()));
    }
}

#[test]
fn whitespace_normalisation_is_the_only_change() {
    // Leading/trailing whitespace around keys and values is canonicalised;
    // nothing else changes across a reparse cycle.
    let conf = ConfFile::parse("  padded   =   value  \n", Dialect::KeyValue);
    assert_eq!(conf.get("padded"), Some("value"));
    let once = conf.serialize();
    let twice = ConfFile::parse(&once, Dialect::KeyValue).serialize();
    assert_eq!(once, twice, "serialization must be a fixed point");
}

#[test]
fn empty_and_whitespace_only_files() {
    for dialect in ALL_DIALECTS {
        assert_eq!(ConfFile::parse("", dialect).serialize(), "");
        let ws = ConfFile::parse("\n\n", dialect);
        assert_eq!(ws.serialize(), "\n\n");
        assert_eq!(ws.settings().count(), 0);
    }
}
