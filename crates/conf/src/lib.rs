//! Configuration-file abstract representation (AR) and dialects.
//!
//! SPEX-INJ "uses the configuration file parser in ConfErr to parse a
//! template configuration file into an abstract representation (AR), and
//! transforms the modified AR with errors injected to a usable
//! configuration file for testing" (§3.1). This crate provides that layer:
//! a dialect-aware parser, a mutation API, and a serializer that
//! round-trips comments and blank lines.
//!
//! Three dialects cover the evaluated systems:
//! * [`Dialect::KeyValue`] — `name = value` (MySQL, PostgreSQL, VSFTP,
//!   Storage-A);
//! * [`Dialect::Directive`] — `Name value...` (Apache httpd);
//! * [`Dialect::SpaceSeparated`] — `name value` (Squid, OpenLDAP).
//!
//! # Examples
//!
//! ```
//! use spex_conf::{ConfFile, Dialect};
//!
//! let text = "# comment\nlistener-threads = 16\nlog_path = /var/log\n";
//! let mut conf = ConfFile::parse(text, Dialect::KeyValue);
//! conf.set("listener-threads", "32");
//! let out = conf.serialize();
//! assert!(out.contains("listener-threads = 32"));
//! assert!(out.contains("# comment"));
//! ```

use std::fmt;

/// Configuration-file syntax family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dialect {
    /// `name = value` lines.
    KeyValue,
    /// `Name value [value...]` directive lines (Apache style).
    Directive,
    /// `name value` lines (Squid/OpenLDAP style).
    SpaceSeparated,
}

/// One entry of the abstract representation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Entry {
    /// A comment line (kept verbatim, including the leading `#`).
    Comment(String),
    /// A blank line.
    Blank,
    /// A parameter setting.
    Setting {
        /// Parameter name.
        name: String,
        /// Argument list (usually one value; Apache directives may have
        /// several).
        args: Vec<String>,
    },
}

/// A parsed configuration file: the AR plus its dialect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfFile {
    /// Entries in file order.
    pub entries: Vec<Entry>,
    /// The syntax used for parsing and serialization.
    pub dialect: Dialect,
}

impl ConfFile {
    /// Parses `text` under the given dialect. Parsing is total: malformed
    /// lines are preserved as comments so that round-tripping never loses
    /// content.
    pub fn parse(text: &str, dialect: Dialect) -> ConfFile {
        let mut entries = Vec::new();
        for line in text.lines() {
            let trimmed = line.trim();
            if trimmed.is_empty() {
                entries.push(Entry::Blank);
                continue;
            }
            if trimmed.starts_with('#') || trimmed.starts_with(';') {
                entries.push(Entry::Comment(line.to_string()));
                continue;
            }
            let setting = match dialect {
                Dialect::KeyValue => trimmed.split_once('=').map(|(k, v)| Entry::Setting {
                    name: k.trim().to_string(),
                    args: vec![v.trim().to_string()],
                }),
                Dialect::Directive | Dialect::SpaceSeparated => {
                    let mut parts = trimmed.split_whitespace();
                    parts.next().map(|name| Entry::Setting {
                        name: name.to_string(),
                        args: parts.map(|s| s.to_string()).collect(),
                    })
                }
            };
            entries.push(setting.unwrap_or_else(|| Entry::Comment(line.to_string())));
        }
        ConfFile { entries, dialect }
    }

    /// Serializes the AR back to file text.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            match e {
                Entry::Comment(c) => out.push_str(c),
                Entry::Blank => {}
                Entry::Setting { name, args } => match self.dialect {
                    Dialect::KeyValue => {
                        out.push_str(name);
                        out.push_str(" = ");
                        out.push_str(&args.join(" "));
                    }
                    Dialect::Directive | Dialect::SpaceSeparated => {
                        out.push_str(name);
                        for a in args {
                            out.push(' ');
                            out.push_str(a);
                        }
                    }
                },
            }
            out.push('\n');
        }
        out
    }

    /// The first value of a setting, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries.iter().find_map(|e| match e {
            Entry::Setting { name: n, args } if n == name => args.first().map(|s| s.as_str()),
            _ => None,
        })
    }

    /// All settings as `(name, first value)` pairs.
    pub fn settings(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().filter_map(|e| match e {
            Entry::Setting { name, args } => Some((
                name.as_str(),
                args.first().map(|s| s.as_str()).unwrap_or(""),
            )),
            _ => None,
        })
    }

    /// Replaces (or appends) the value of `name`. Returns whether an
    /// existing entry was replaced.
    pub fn set(&mut self, name: &str, value: &str) -> bool {
        for e in &mut self.entries {
            if let Entry::Setting { name: n, args } = e {
                if n == name {
                    *args = vec![value.to_string()];
                    return true;
                }
            }
        }
        self.entries.push(Entry::Setting {
            name: name.to_string(),
            args: vec![value.to_string()],
        });
        false
    }

    /// Renames all settings of `from` to `to`, keeping their values and
    /// positions. Returns how many were renamed.
    pub fn rename(&mut self, from: &str, to: &str) -> usize {
        let mut renamed = 0;
        for e in &mut self.entries {
            if let Entry::Setting { name, .. } = e {
                if name == from {
                    *name = to.to_string();
                    renamed += 1;
                }
            }
        }
        renamed
    }

    /// Removes all settings of `name`. Returns how many were removed.
    pub fn remove(&mut self, name: &str) -> usize {
        let before = self.entries.len();
        self.entries
            .retain(|e| !matches!(e, Entry::Setting { name: n, .. } if n == name));
        before - self.entries.len()
    }

    /// The 1-based line number of a setting in the serialized output (for
    /// "pinpoints the line" checks).
    pub fn line_of(&self, name: &str) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| matches!(e, Entry::Setting { name: n, .. } if n == name))
            .map(|i| i + 1)
    }
}

impl fmt::Display for ConfFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.serialize())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_key_value() {
        let c = ConfFile::parse("a = 1\nb=2\n", Dialect::KeyValue);
        assert_eq!(c.get("a"), Some("1"));
        assert_eq!(c.get("b"), Some("2"));
        assert_eq!(c.get("c"), None);
    }

    #[test]
    fn rename_keeps_value_and_position() {
        let mut c = ConfFile::parse("a = 1\ntypo = 2\nb = 3\n", Dialect::KeyValue);
        assert_eq!(c.rename("typo", "fixed"), 1);
        assert_eq!(c.rename("no_such", "x"), 0);
        assert_eq!(c.get("fixed"), Some("2"));
        assert_eq!(c.get("typo"), None);
        assert_eq!(c.line_of("fixed"), Some(2));
    }

    #[test]
    fn parses_directives_with_multiple_args() {
        let c = ConfFile::parse("Listen 0.0.0.0 8080\nServerName web\n", Dialect::Directive);
        assert_eq!(c.get("Listen"), Some("0.0.0.0"));
        match &c.entries[0] {
            Entry::Setting { args, .. } => assert_eq!(args.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn round_trips_comments_and_blanks() {
        let text = "# header\n\nkey = value\n# trailing\n";
        let c = ConfFile::parse(text, Dialect::KeyValue);
        assert_eq!(c.serialize(), text);
    }

    #[test]
    fn set_replaces_in_place() {
        let mut c = ConfFile::parse("a = 1\nb = 2\n", Dialect::KeyValue);
        assert!(c.set("a", "9"));
        assert_eq!(c.get("a"), Some("9"));
        // Order preserved.
        assert_eq!(c.serialize(), "a = 9\nb = 2\n");
    }

    #[test]
    fn set_appends_when_missing() {
        let mut c = ConfFile::parse("a = 1\n", Dialect::KeyValue);
        assert!(!c.set("new", "x"));
        assert_eq!(c.get("new"), Some("x"));
    }

    #[test]
    fn remove_deletes_settings() {
        let mut c = ConfFile::parse("a 1\na 2\nb 3\n", Dialect::SpaceSeparated);
        assert_eq!(c.remove("a"), 2);
        assert_eq!(c.get("a"), None);
        assert_eq!(c.get("b"), Some("3"));
    }

    #[test]
    fn line_numbers_are_stable() {
        let c = ConfFile::parse("# c\na = 1\nb = 2\n", Dialect::KeyValue);
        assert_eq!(c.line_of("a"), Some(2));
        assert_eq!(c.line_of("b"), Some(3));
        assert_eq!(c.line_of("z"), None);
    }

    #[test]
    fn malformed_lines_survive_round_trip() {
        let text = "!!! not a setting\na = 1\n";
        let c = ConfFile::parse(text, Dialect::KeyValue);
        assert!(c.serialize().contains("!!! not a setting"));
    }

    #[test]
    fn settings_iterator() {
        let c = ConfFile::parse("a = 1\n# x\nb = 2\n", Dialect::KeyValue);
        let all: Vec<(&str, &str)> = c.settings().collect();
        assert_eq!(all, vec![("a", "1"), ("b", "2")]);
    }
}
