//! The infer → persist → check pipeline end to end.
//!
//! Infers constraints for one generated subject system, persists them to a
//! constraint database on disk, reloads the database, and validates both a
//! clean and a broken configuration file — the proactive workflow the
//! paper argues for: the system, not the user, catches the mistake before
//! deployment. Checking runs on a borrowed [`CheckSession`]: the database
//! is never copied, whether one file or a whole fleet is validated.
//!
//! ```text
//! cargo run --example check_config [system]
//! ```

use spex::check::{CheckSession, ConstraintDb, Report, StaticEnv};
use spex::core::{Annotation, Spex};
use spex::systems::BuiltSystem;
use spex::HumanRenderer;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "OpenLDAP".to_string());
    let spec = spex::systems::system_by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown system {name:?}; try OpenLDAP, Apache, MySQL, ...");
        std::process::exit(2);
    });

    // 1. Infer: the expensive pass, run once per system.
    let built = BuiltSystem::build(spec);
    let anns = Annotation::parse(&built.gen.annotations).expect("annotations parse");
    let analysis = Spex::analyze(built.module.clone(), &anns);

    // 2. Persist: save the constraints, then work only from the reloaded
    //    database (a deployment pipeline would ship this file, not the
    //    source tree).
    let mut db = ConstraintDb::from_analysis(built.spec.name, built.gen.dialect, &analysis);
    db.note_params(built.spec.params.iter().map(|p| p.name.as_str()));
    let path = std::env::temp_dir().join(format!("{}.spexdb", built.spec.name));
    db.save(&path).expect("db saves");
    let db = ConstraintDb::load(&path).expect("db loads");
    println!(
        "persisted {} constraints for {} parameters to {}",
        db.constraint_count(),
        db.params.len(),
        path.display()
    );

    // Environment model: what exists on the target host.
    let mut env = StaticEnv::new();
    env.occupy_port(80);
    for (f, _) in &built.gen.world_files {
        env.add_file(f);
    }
    for d in &built.gen.world_dirs {
        env.add_dir(d);
    }
    for u in ["root", "nobody", "daemon"] {
        env.add_user(u);
    }

    // 3. Check: one borrowed session serves every check below — building
    //    it indexes the parameter names once and copies nothing.
    let session = CheckSession::new(&db).with_env(&env);
    let clean = session.check_text(&built.gen.template_conf);
    println!(
        "\npristine {}.conf: {} diagnostic(s)",
        built.spec.name,
        clean.len()
    );

    // ...and a hand-broken copy is not. Corrupt the first few settings in
    // representative ways.
    let mut conf = spex::conf::ConfFile::parse(&built.gen.template_conf, built.gen.dialect);
    let names: Vec<String> = conf.settings().map(|(n, _)| n.to_string()).collect();
    let breakages = ["not_a_number", "-5", "99999999", "9G"];
    for (name, bad) in names.iter().zip(breakages.iter()) {
        conf.set(name, bad);
    }
    conf.set("typo_paramater", "1");
    let broken = conf.serialize();
    let diags = session.check(&conf);
    println!("\nbroken copy: {} diagnostic(s)", diags.len());
    for d in diags.iter().take(8) {
        println!("  {d}");
    }

    // Machine-applicable fixes: apply every computed repair and re-check.
    let fixable = diags.iter().filter_map(|d| d.fix.as_ref());
    let mut repaired = conf.clone();
    let applied = fixable.map(|f| f.apply(&mut repaired)).count();
    println!(
        "applied {applied} machine fix(es); repaired copy: {} diagnostic(s)",
        session.check(&repaired).len()
    );

    // 4. Scale out: validate a whole fleet's worth of files at once, on
    //    all cores, through the same borrowed session.
    let files: Vec<(String, String)> = (0..64)
        .map(|i| {
            (
                format!("host{i:02}.conf"),
                if i % 4 == 0 {
                    broken.clone()
                } else {
                    built.gen.template_conf.clone()
                },
            )
        })
        .collect();
    let report = session.check_texts(&files);
    println!(
        "\nbatch validation of a 64-host fleet:\n{}",
        report.stats.render()
    );

    // 5. Stream: the same fleet on disk, walked lazily with bounded
    //    memory (each worker holds one file text at a time), rendered as
    //    a deployment gate would consume it.
    let fleet = std::env::temp_dir().join(format!("{}_fleet", built.spec.name));
    std::fs::create_dir_all(&fleet).expect("fleet dir");
    for (file, text) in &files {
        std::fs::write(fleet.join(file), text).expect("fleet file");
    }
    let report: Report = session
        .check_paths(std::slice::from_ref(&fleet))
        .expect("fleet walks");
    println!(
        "streaming validation of the on-disk fleet (exit code {}):\n{}",
        report.exit_code(),
        report.stats.render()
    );
    // Human rendering of the first flagged file, as a CI log would show it.
    if let Some(first_bad) = report.files.iter().find(|f| !f.is_clean()) {
        print!(
            "{}",
            Report::single(first_bad.clone()).render(&HumanRenderer::plain())
        );
    }
    std::fs::remove_dir_all(&fleet).ok();

    std::fs::remove_file(&path).ok();
}
