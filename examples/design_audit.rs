//! Audit a system's configuration design for error-prone patterns (§3.2).
//!
//! Run with `cargo run --example design_audit`.
//!
//! Runs the four detector families over the generated Squid subject system
//! — the paper's richest source of design findings: 73 silently-overruled
//! booleans fixed after reporting, mixed case-sensitivity conventions, and
//! widespread unsafe parsing APIs.

use spex::core::{Annotation, Spex};
use spex::design::{unsafe_api, DesignReport};

fn main() {
    let spec = spex::systems::system_by_name("Squid").expect("catalog has Squid");
    let built = spex::systems::BuiltSystem::build(spec);
    println!(
        "auditing {} ({} parameters)...\n",
        built.spec.name,
        built.spec.param_count()
    );

    let anns = Annotation::parse(&built.gen.annotations).expect("annotations parse");
    let analysis = Spex::analyze(built.module.clone(), &anns);
    let report = DesignReport::analyze(&analysis, &built.gen.manual);

    // Case-sensitivity inconsistency (Table 6 / Figure 6a).
    println!(
        "case sensitivity: {} sensitive vs {} insensitive parameters{}",
        report.case.sensitive.len(),
        report.case.insensitive.len(),
        if report.case.is_inconsistent() {
            "  << INCONSISTENT"
        } else {
            ""
        }
    );

    // Unit inconsistency (Table 7 / Figure 6b).
    println!(
        "size units mixed: {}; time units mixed: {}",
        report.units.size_inconsistent(),
        report.units.time_inconsistent()
    );
    for p in report.units.time_minority().iter().take(3) {
        println!("    off-convention time unit: {p}");
    }

    // Silent overruling (Figure 6c).
    println!(
        "\nsilently overruled parameters: {} (all through {} code location(s))",
        report.overruling.len(),
        report
            .overruling
            .iter()
            .map(|o| (&o.in_function, o.span))
            .collect::<std::collections::BTreeSet<_>>()
            .len()
    );
    for o in report.overruling.iter().take(3) {
        println!("    \"{}\" coerced in {}", o.param, o.in_function);
    }

    // Unsafe parsing APIs (Figure 6d).
    let affected = unsafe_api::affected_params(&report.unsafe_apis);
    println!(
        "\nparameters parsed through unsafe APIs: {}",
        affected.len()
    );
    for f in report.unsafe_apis.iter().take(3) {
        println!("    {} on \"{}\" in {}", f.api, f.param, f.in_function);
    }

    // Undocumented constraints.
    let (ranges, deps, rels) = report.undocumented.counts();
    println!(
        "\nundocumented constraints: {ranges} ranges, {deps} dependencies, {rels} relationships"
    );
}
