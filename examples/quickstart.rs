//! Quickstart: infer constraints from configuration-handling code.
//!
//! Run with `cargo run --example quickstart`.
//!
//! Builds a miniature server with three parameters, infers their
//! constraints with SPEX, and prints them — the "hello world" of the
//! pipeline described in §2 of the paper.

use spex::core::{Annotation, Spex};

fn main() {
    // A miniature server: one option table, a startup routine with a
    // validity check, a port bind and a file open.
    let source = r#"
        int worker_threads = 8;
        char* pid_file = "/var/run/app.pid";
        int listen_port = 8080;

        struct opt_int { char* name; int* var; };
        struct opt_str { char* name; char** var; };
        struct opt_int int_options[] = {
            { "worker_threads", &worker_threads },
            { "listen_port", &listen_port },
        };
        struct opt_str str_options[] = {
            { "pid_file", &pid_file },
        };

        int startup() {
            if (worker_threads < 1 || worker_threads > 64) {
                fprintf(stderr, "worker_threads out of range");
                exit(1);
            }
            if (open(pid_file, 1) < 0) {
                fprintf(stderr, "cannot create pid file %s", pid_file);
                exit(1);
            }
            int s = socket(0, 0, 0);
            if (bind(s, listen_port) < 0) {
                fprintf(stderr, "cannot bind port %d", listen_port);
                exit(1);
            }
            listen(s, 16);
            return 0;
        }
    "#;

    // Front-end: parse and lower to the IR (the Clang+LLVM stand-in).
    let program = spex::lang::parse_program(source).expect("source parses");
    let module = spex::ir::lower_program(&program).expect("source lowers");

    // The only manual step SPEX needs: annotate the mapping interfaces
    // (Figure 4 of the paper), not every parameter.
    let annotations = Annotation::parse(
        "{ @STRUCT = int_options\n  @PAR = [opt_int, 1]\n  @VAR = [opt_int, 2] }\n\
         { @STRUCT = str_options\n  @PAR = [opt_str, 1]\n  @VAR = [opt_str, 2] }",
    )
    .expect("annotations parse");

    // Run inference.
    let analysis = Spex::analyze(module, &annotations);

    println!("SPEX inferred the following configuration constraints:\n");
    for report in &analysis.reports {
        println!("parameter \"{}\":", report.param.name);
        for c in &report.constraints {
            println!("    {c}");
        }
        println!();
    }

    let counts = analysis.counts_by_category();
    println!("constraints by category: {counts:?}");
}
