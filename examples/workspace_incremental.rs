//! The incremental workspace session end to end.
//!
//! A `Workspace` is the redesigned primary entry point: it owns sources,
//! annotations and a persisted constraint database, fingerprints functions
//! to know what an edit dirtied, and re-infers only that — so constraint
//! checking is cheap enough to run on *every* change, which is the only
//! regime where "the system, not the user, catches the misconfiguration"
//! actually holds.
//!
//! ```text
//! cargo run --example workspace_incremental
//! ```

use spex::conf::Dialect;
use spex::Workspace;

const ANN: &str = "{ @STRUCT = options\n @PAR = [opt, 1]\n @VAR = [opt, 2] }";

const V1_SOURCE: &str = r#"
    int listener_threads = 16;
    int idle_timeout = 60;
    struct opt { char* name; int* var; };
    struct opt options[] = {
        { "listener-threads", &listener_threads },
        { "idle-timeout", &idle_timeout }
    };
    void startup() {
        if (listener_threads < 1) { exit(1); }
        if (listener_threads > 16) { exit(1); }
    }
    void reaper() { sleep(idle_timeout); }
"#;

/// The next release tightens the reaper: timeouts above ten minutes are
/// now rejected. Only `reaper` changed.
const V2_SOURCE: &str = r#"
    int listener_threads = 16;
    int idle_timeout = 60;
    struct opt { char* name; int* var; };
    struct opt options[] = {
        { "listener-threads", &listener_threads },
        { "idle-timeout", &idle_timeout }
    };
    void startup() {
        if (listener_threads < 1) { exit(1); }
        if (listener_threads > 16) { exit(1); }
    }
    void reaper() {
        if (idle_timeout > 600) { exit(1); }
        sleep(idle_timeout);
    }
"#;

fn main() {
    // Release 1: the initial analysis is necessarily full. Telemetry is
    // opt-in per workspace; enabled here so the run can be replayed from
    // its span tree below.
    let mut ws = Workspace::new("demo", Dialect::KeyValue).with_telemetry();
    ws.add_module("main.c", V1_SOURCE, ANN).expect("v1 parses");
    let r = ws.reanalyze();
    println!(
        "release 1: analyzed {} module(s), {} parameter(s), {} pass invocations",
        r.modules_analyzed,
        r.params_reinferred,
        r.passes.total(),
    );

    let conf = "listener-threads = 8\nidle-timeout = 86400\n";
    println!(
        "  `idle-timeout = 86400` under release 1: {} diagnostic(s)",
        ws.check_text(conf).len()
    );

    // Release 2: one function changed; the fingerprint diff knows which.
    let diff = ws.update_module("main.c", V2_SOURCE).expect("v2 parses");
    println!("\nrelease 2 edit dirties: {:?}", diff.changed);
    let r = ws.reanalyze();
    println!(
        "release 2: re-inferred {} of 2 parameter(s) ({} pass invocations — \
         work proportional to the change)",
        r.params_reinferred,
        r.passes.total(),
    );

    // The pass-level cache made the warm run cheap: the edit touched only
    // `reaper`, so `listener-threads`'s taint slice and the mapping
    // extraction were served from the fingerprint-keyed cache, and the
    // stored module was shared into the analysis, never deep-cloned.
    println!(
        "  pass cache: {} slice hit(s), {} slice recompute(s), {} mapping hit(s); \
         module deep-clones: {}",
        r.passes.taint_cache_hits,
        r.passes.taint_runs,
        r.passes.mapping_cache_hits,
        ws.module_clones(),
    );
    let cache_ok = r.passes.taint_cache_hits >= 1
        && r.passes.mapping_cache_hits >= 1
        && ws.module_clones() == 0;
    println!(
        "  pass-cache self-check: {}",
        if cache_ok { "OK" } else { "FAILED" }
    );

    // The same config is now caught before deployment. Checking runs on
    // the workspace's cached borrowed session: the database was not
    // cloned for this (or any) check, and the cache was rebuilt exactly
    // once per release's reanalyze.
    for d in ws.check_text(conf) {
        println!("  {d}");
    }
    println!(
        "  (db clones during checking: {}; session index builds: {})",
        ws.db().clone_count(),
        ws.session_rebuilds(),
    );

    // Machine consumers get the same findings as coded JSON Lines.
    let report = ws.check_texts(&[("staging.conf".to_string(), conf.to_string())]);
    print!(
        "\nas JSON Lines:\n{}",
        report.render(&spex::JsonLinesRenderer)
    );

    // Everything above left a trace: the telemetry snapshot is the whole
    // session as a span tree (what ran, how often, how long) plus the
    // pass/cache/diagnostic counters — the text rendering is the
    // "explain what my edit cost" view.
    let snap = ws.telemetry();
    print!("\ntelemetry:\n{}", snap.render_text());
    let passes_covered = [
        "infer.basic_type",
        "infer.semantic_type",
        "infer.range",
        "infer.control_dep",
        "infer.value_rel",
    ]
    .iter()
    .all(|p| snap.span_count(p) > 0);
    let telemetry_ok = passes_covered
        && snap.span_count("workspace.reanalyze") == 2
        && snap.span_count("check.file") > 0
        && snap.counter("check.diagnostics") > 0;
    println!(
        "telemetry self-check: {}",
        if telemetry_ok { "OK" } else { "FAILED" }
    );

    // The database persists (v2 format, with provenance) for the fleet's
    // checkers; a v1-era file would migrate transparently on load.
    let path = std::env::temp_dir().join("workspace_incremental.spexdb");
    ws.save_db(&path).expect("db saves");
    let reloaded = spex::check::ConstraintDb::load(&path).expect("db loads");
    println!(
        "\npersisted {} constraints for {} parameter(s) to {}",
        reloaded.constraint_count(),
        reloaded.params.len(),
        path.display()
    );
    std::fs::remove_file(&path).ok();
}
