//! Harden a system against misconfigurations with SPEX-INJ (§3.1).
//!
//! Run with `cargo run --example harden_system`.
//!
//! Takes the generated OpenLDAP subject system, infers its constraints,
//! generates constraint-violating misconfigurations, injects each one, and
//! prints the exposed vulnerabilities — including the paper's famous
//! `listener-threads` crash (Figure 2).

use spex::core::{Annotation, Spex};
use spex::inject::{genrule, standard_rules, CampaignReport, InjectionCampaign, TestTarget};

fn main() {
    // Build the generated OpenLDAP subject system.
    let spec = spex::systems::system_by_name("OpenLDAP").expect("catalog has OpenLDAP");
    let built = spex::systems::BuiltSystem::build(spec);
    println!(
        "subject system: {} ({} parameters, {} generated lines)",
        built.spec.name,
        built.spec.param_count(),
        built.loc()
    );

    // Infer constraints.
    let anns = Annotation::parse(&built.gen.annotations).expect("annotations parse");
    let analysis = Spex::analyze(built.module.clone(), &anns);
    let constraints: Vec<_> = analysis.all_constraints().cloned().collect();
    println!("inferred constraints: {}", constraints.len());

    // Generate violating settings (Table 2 rules).
    let misconfigs = genrule::generate_all(&standard_rules(), &constraints);
    println!("generated misconfigurations: {}", misconfigs.len());

    // Injection campaign against the system's own test suite.
    let world_files = built.gen.world_files.clone();
    let world_dirs = built.gen.world_dirs.clone();
    let target = TestTarget {
        name: built.spec.name.to_string(),
        module: &built.module,
        dialect: built.gen.dialect,
        template_conf: built.gen.template_conf.clone(),
        config_entry: "handle_config".into(),
        startup: "startup".into(),
        tests: built.gen.tests.clone(),
        world: Box::new(move || {
            let mut w = spex::vm::World::default();
            w.occupy_port(80);
            for (f, c) in &world_files {
                w.add_file(f, c);
            }
            for d in &world_dirs {
                w.add_dir(d);
            }
            w
        }),
        param_globals: built.gen.param_globals.clone(),
    };
    let outcomes = InjectionCampaign::new(target).run(&misconfigs);
    let report = CampaignReport::from_outcomes(&outcomes);

    println!(
        "\nexposed {} vulnerabilities at {} unique code locations:",
        report.total(),
        report.locations.len()
    );
    for (column, count) in &report.by_reaction {
        println!("    {column:<20} {count}");
    }
    println!(
        "good reactions (pinpointing): {}, benign: {}",
        report.good_reactions, report.benign
    );

    // Print a full developer-facing error report for the first crash.
    if let Some(crash) = report
        .vulnerabilities
        .iter()
        .find(|v| matches!(v.reaction, spex::inject::Reaction::Crash(_)))
    {
        println!("\n{}", CampaignReport::render_error_report(crash));
    }
}
