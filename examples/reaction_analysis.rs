//! Static reaction analysis: predict how a system would react to an
//! invalid config value — without injecting a single misconfiguration.
//!
//! One subject program exhibits all four reaction classes
//! (`SPEX-V001..V004`); the workspace classifies every parameter from
//! the IR, renders the predicted vulnerabilities as an ordinary coded
//! [`Report`], and then demonstrates that a warm `reanalyze()` after an
//! edit re-classifies only the parameters whose taint slice the edit
//! touched. The example validates its own machine output and exits
//! nonzero if any contract is broken — CI runs it for that.
//!
//! ```text
//! cargo run --example reaction_analysis
//! ```

use spex::check::JsonLinesRenderer;
use spex::conf::Dialect;
use spex::react::ReactionClass;
use spex::{HumanRenderer, Workspace};

/// Four parameters, one per reaction class.
const SOURCE: &str = r#"
    int listener_threads = 8;
    int cache_mb = 64;
    int nap_seconds = 5;
    int banner_width = 16;
    struct opt { char* name; int* var; };
    struct opt options[] = {
        { "listener-threads", &listener_threads },
        { "cache-mb", &cache_mb },
        { "nap-seconds", &nap_seconds },
        { "banner-width", &banner_width }
    };
    void startup() {
        if (listener_threads < 1) { exit(1); }
        if (listener_threads > 64) { exit(1); }
        if (cache_mb > 1024) { cache_mb = 64; }
    }
    void worker_loop() {
        sleep(nap_seconds);
    }
    void banner() {
        int pad = banner_width * 2;
    }
"#;

/// The same program after a fix: the sleep duration gains a rejecting
/// guard, so `nap-seconds` flips from late-detection to checked.
const EDITED: &str = r#"
    int listener_threads = 8;
    int cache_mb = 64;
    int nap_seconds = 5;
    int banner_width = 16;
    struct opt { char* name; int* var; };
    struct opt options[] = {
        { "listener-threads", &listener_threads },
        { "cache-mb", &cache_mb },
        { "nap-seconds", &nap_seconds },
        { "banner-width", &banner_width }
    };
    void startup() {
        if (listener_threads < 1) { exit(1); }
        if (listener_threads > 64) { exit(1); }
        if (cache_mb > 1024) { cache_mb = 64; }
    }
    void worker_loop() {
        if (nap_seconds > 3600) { exit(1); }
        sleep(nap_seconds);
    }
    void banner() {
        int pad = banner_width * 2;
    }
"#;

const ANN: &str = "{ @STRUCT = options\n @PAR = [opt, 1]\n @VAR = [opt, 2] }";

fn main() {
    let mut ws = Workspace::new("demo", Dialect::KeyValue);
    ws.add_module("server.c", SOURCE, ANN).expect("parses");
    let cold = ws.reanalyze();
    assert_eq!(cold.passes.react_runs, 4, "cold run classifies everything");

    // Every parameter gets a prediction; one of each class here.
    println!("== predicted reaction per parameter ==");
    for (module, f) in ws.reaction_findings() {
        println!("{module}: {f}");
    }
    fn class_of(ws: &Workspace, param: &str) -> ReactionClass {
        ws.reaction_findings()
            .iter()
            .find(|(_, f)| f.param == param)
            .map(|(_, f)| f.class)
            .expect("classified")
    }
    assert_eq!(
        class_of(&ws, "listener-threads"),
        ReactionClass::CheckedWithMessage
    );
    assert_eq!(class_of(&ws, "cache-mb"), ReactionClass::SilentFallback);
    assert_eq!(class_of(&ws, "nap-seconds"), ReactionClass::LateDetection);
    assert_eq!(class_of(&ws, "banner-width"), ReactionClass::Unchecked);

    // Predicted vulnerabilities leave the system as an ordinary coded
    // report: same renderers, same provenance, same machine contract.
    let report = ws.reaction_report();
    println!("\n== human terminal text ==");
    print!("{}", report.render(&HumanRenderer::plain()));
    let jsonl = report.render(&JsonLinesRenderer);
    let findings = JsonLinesRenderer::validate(&jsonl).expect("machine output validates");
    assert_eq!(findings, 3, "three of the four classes are vulnerabilities");
    assert!(jsonl.contains("SPEX-V003"), "late detection is an error");

    // Fix the sleep guard and reanalyze warm: only the parameter whose
    // slice the edit touched is re-classified; the rest are cache hits.
    ws.update_module("server.c", EDITED).expect("parses");
    let warm = ws.reanalyze();
    assert_eq!(warm.passes.react_runs, 1, "only nap-seconds re-classified");
    assert_eq!(warm.passes.react_cache_hits, 3, "the rest served cached");
    assert_eq!(
        class_of(&ws, "nap-seconds"),
        ReactionClass::CheckedWithMessage
    );
    println!(
        "\nafter the fix: nap-seconds is {} ({} re-classified, {} cached)",
        class_of(&ws, "nap-seconds"),
        warm.passes.react_runs,
        warm.passes.react_cache_hits
    );
    println!("reaction analysis self-check: OK");
}
