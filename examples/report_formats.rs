//! One validation run, rendered for every consumer: a human in a
//! terminal, a log pipeline eating JSON Lines, and a code-scanning UI
//! eating a SARIF-style document.
//!
//! The same [`Report`] feeds all three renderers; the diagnostic codes
//! (`SPEX-Rxxx`) are the stable machine contract across them. The example
//! finishes by structurally validating its own JSON Lines output with the
//! in-tree checker (no schema downloads, no network) and exits nonzero if
//! the contract is broken — CI runs it exactly for that.
//!
//! ```text
//! cargo run --example report_formats
//! ```

use spex::check::JsonLinesRenderer;
use spex::conf::Dialect;
use spex::{DiagCode, HumanRenderer, SarifRenderer, Workspace};

/// A small subject: two constrained parameters and a control dependency.
const SOURCE: &str = r#"
    int listener_threads = 16;
    int idle_timeout = 60;
    int keepalive = 1;
    struct opt { char* name; int* var; };
    struct opt options[] = {
        { "listener-threads", &listener_threads },
        { "idle-timeout", &idle_timeout },
        { "keepalive", &keepalive }
    };
    void startup() {
        if (listener_threads < 1) { exit(1); }
        if (listener_threads > 16) { exit(1); }
    }
    void reaper() {
        if (keepalive) { sleep(idle_timeout); }
    }
"#;

const ANN: &str = "{ @STRUCT = options\n @PAR = [opt, 1]\n @VAR = [opt, 2] }";

fn main() {
    let mut ws = Workspace::new("demo", Dialect::KeyValue);
    ws.add_module("server.c", SOURCE, ANN)
        .expect("source parses");
    ws.reanalyze();

    // A fleet with one clean file and two broken ones.
    let files: Vec<(String, String)> = vec![
        (
            "fleet/ok.conf".into(),
            "listener-threads = 8\nidle-timeout = 60\n".into(),
        ),
        (
            "fleet/typo.conf".into(),
            "listener-threds = 8\nidle-timeout = 86400000\n".into(),
        ),
        (
            "fleet/ignored.conf".into(),
            "listener-threads = 9999\nidle-timeout = 60\nkeepalive = off\n".into(),
        ),
    ];
    let report = ws.check_texts(&files);

    println!("== human terminal text ==");
    print!("{}", report.render(&HumanRenderer::plain()));

    println!("\n== JSON Lines (one finding per line) ==");
    let jsonl = report.render(&JsonLinesRenderer);
    print!("{jsonl}");

    println!("\n== SARIF-style document (truncated to one line here) ==");
    let sarif = report.render(&SarifRenderer);
    println!(
        "{} bytes: {}...",
        sarif.len(),
        &sarif[..80.min(sarif.len())]
    );

    // The machine contract, checked in-tree: every line parses, every
    // code is a stable SPEX-Rxxx that round-trips, the summary adds up.
    match JsonLinesRenderer::validate(&jsonl) {
        Ok(findings) => {
            assert!(findings > 0, "the broken fleet must produce findings");
            // And the codes we expect from this fleet are all present.
            for code in [DiagCode::UnknownKey, DiagCode::Range, DiagCode::ControlDep] {
                assert!(
                    jsonl.contains(code.as_str()),
                    "expected a {code} finding in:\n{jsonl}"
                );
            }
            println!("\njson-lines structural check: OK ({findings} findings validated)");
        }
        Err(e) => {
            eprintln!("\njson-lines structural check FAILED: {e}");
            std::process::exit(1);
        }
    }
    // The run gates a deployment: broken fleet => exit code 1 semantics.
    assert_eq!(report.exit_code(), 1);
}
