//! Integration tests for `spex-check`: the infer → persist → check
//! pipeline over the seven generated subject systems.
//!
//! The acceptance bar mirrors the paper's goal for proactive validation:
//! each system's pristine default configuration must check clean, while
//! ≥ 90% of the configurations corrupted by the SPEX-INJ generation rules
//! must be flagged — without ever re-running inference (the checker only
//! sees the persisted [`ConstraintDb`]).

use spex::check::{BatchEngine, BatchJob, Checker, ConstraintDb, Severity, StaticEnv};
use spex::core::{Annotation, Spex};
use spex::inject::{genrule, standard_rules, Misconfig};
use spex::systems::{all_systems, BuiltSystem};

/// Builds one system, runs inference once, and persists the constraints
/// plus the deployment-environment model the checker needs.
fn infer_and_persist(built: &BuiltSystem) -> (ConstraintDb, StaticEnv) {
    let anns = Annotation::parse(&built.gen.annotations).expect("annotations parse");
    let analysis = Spex::analyze(built.module.clone(), &anns);
    let mut db = ConstraintDb::from_analysis(built.spec.name, built.gen.dialect, &analysis);
    // The full parameter universe is known from the system's documentation
    // (here: the spec); parameters inference did not reach are still legal
    // keys.
    db.note_params(built.spec.params.iter().map(|p| p.name.as_str()));

    // Mirror the modelled world of `BuiltSystem::world` (§4's harness):
    // port 80 occupied, the template's files and dirs present, the stock
    // users/groups/hosts known.
    let mut env = StaticEnv::new();
    env.occupy_port(80);
    for (f, _) in &built.gen.world_files {
        env.add_file(f);
    }
    for d in &built.gen.world_dirs {
        env.add_dir(d);
    }
    for u in ["root", "nobody", "daemon"] {
        env.add_user(u);
    }
    for g in ["root", "daemon"] {
        env.add_group(g);
    }
    env.add_host("localhost");

    // The save/load round-trip is part of the contract: the checker runs
    // from the persisted form, never from the in-memory analysis.
    let db = ConstraintDb::load_from_str(&db.save_to_string()).expect("db round-trips");
    (db, env)
}

/// Applies one generated misconfiguration to the template config.
fn corrupt(built: &BuiltSystem, m: &Misconfig) -> String {
    let mut conf = spex::conf::ConfFile::parse(&built.gen.template_conf, built.gen.dialect);
    conf.set(&m.param, &m.value);
    for (p, v) in &m.also_set {
        conf.set(p, v);
    }
    conf.serialize()
}

#[test]
fn constraint_db_round_trips_losslessly_for_every_system() {
    for spec in all_systems() {
        let built = BuiltSystem::build(spec);
        let anns = Annotation::parse(&built.gen.annotations).unwrap();
        let analysis = Spex::analyze(built.module.clone(), &anns);
        let db = ConstraintDb::from_analysis(built.spec.name, built.gen.dialect, &analysis);
        let text = db.save_to_string();
        let back = ConstraintDb::load_from_str(&text).unwrap();
        assert_eq!(
            db, back,
            "{}: save/load changed the database",
            built.spec.name
        );
        assert_eq!(
            text,
            back.save_to_string(),
            "{}: re-serialization is not stable",
            built.spec.name
        );
        assert!(
            db.constraint_count() > 0,
            "{}: empty database",
            built.spec.name
        );
    }
}

#[test]
fn pristine_defaults_check_clean_and_corrupted_configs_are_flagged() {
    let mut engine = BatchEngine::new();
    let mut jobs: Vec<BatchJob> = Vec::new();
    let mut corrupted_per_system: Vec<(String, usize)> = Vec::new();

    for spec in all_systems() {
        let built = BuiltSystem::build(spec);
        let (db, env) = infer_and_persist(&built);
        let system = built.spec.name.to_string();

        // Job 0 of each system: the pristine template.
        jobs.push(BatchJob {
            system: system.clone(),
            file: format!("{system}/default.conf"),
            text: built.gen.template_conf.clone(),
        });

        // Corrupted corpus: every SPEX-INJ generation rule applied to the
        // persisted constraints, one corrupted file per misconfiguration
        // (capped per system to keep the suite fast; the cap is far above
        // the statistical noise floor).
        let constraints: Vec<_> = db
            .params
            .iter()
            .flat_map(|p| p.constraints.iter().cloned())
            .collect();
        let misconfigs = genrule::generate_all(&standard_rules(), &constraints);
        assert!(
            misconfigs.len() >= 20,
            "{system}: too few generated misconfigurations ({})",
            misconfigs.len()
        );
        let cap = 400;
        let step = (misconfigs.len() / cap).max(1);
        let sampled: Vec<&Misconfig> = misconfigs.iter().step_by(step).collect();
        corrupted_per_system.push((system.clone(), sampled.len()));
        for (i, m) in sampled.iter().enumerate() {
            jobs.push(BatchJob {
                system: system.clone(),
                file: format!("{system}/corrupt_{i}.conf"),
                text: corrupt(&built, m),
            });
        }

        engine.add_db(db);
        engine.add_env(&system, env);
    }

    let (reports, stats) = engine.run(&jobs);
    assert_eq!(stats.files, jobs.len());
    assert_eq!(stats.unknown_system_files, 0);

    // Pristine templates: zero diagnostics, for every system.
    for r in reports.iter().filter(|r| r.file.ends_with("/default.conf")) {
        assert!(
            r.is_clean(),
            "{}: pristine default config flagged: {:#?}",
            r.system,
            r.diagnostics
        );
    }

    // Corrupted corpus: ≥ 90% flagged overall.
    let corrupted: Vec<_> = reports
        .iter()
        .filter(|r| !r.file.ends_with("/default.conf"))
        .collect();
    let total: usize = corrupted_per_system.iter().map(|(_, n)| n).sum();
    assert_eq!(corrupted.len(), total);
    let flagged = corrupted
        .iter()
        .filter(|r| !r.diagnostics.is_empty())
        .count();
    let rate = flagged as f64 / total as f64;
    assert!(
        rate >= 0.90,
        "only {flagged}/{total} = {rate:.3} of corrupted configs flagged; per system: {:?}",
        corrupted_per_system
            .iter()
            .map(|(s, n)| {
                let missed: Vec<&str> = corrupted
                    .iter()
                    .filter(|r| &r.system == s && r.diagnostics.is_empty())
                    .map(|r| r.file.as_str())
                    .collect();
                (s.clone(), *n, missed.len())
            })
            .collect::<Vec<_>>()
    );

    // The batch stats agree with the per-file reports.
    assert_eq!(stats.flagged_files, flagged);
    assert_eq!(stats.clean_files, stats.files - flagged);
    assert!(stats.errors > 0);
}

#[test]
fn checker_pinpoints_line_value_and_provenance() {
    let spec = spex::systems::system_by_name("OpenLDAP").unwrap();
    let built = BuiltSystem::build(spec);
    let (db, env) = infer_and_persist(&built);

    // Corrupt one known range parameter in place.
    let mut conf = spex::conf::ConfFile::parse(&built.gen.template_conf, built.gen.dialect);
    let victim = db
        .params
        .iter()
        .find(|p| {
            p.constraints
                .iter()
                .any(|c| matches!(c.kind, spex::core::ConstraintKind::Range(_)))
        })
        .expect("a range-constrained parameter");
    conf.set(&victim.name, "99999999");
    let line = conf.line_of(&victim.name).unwrap();

    let diags = Checker::new(&db).with_env(&env).check(&conf);
    let d = diags
        .iter()
        .find(|d| d.param == victim.name && d.category == "data-range")
        .unwrap_or_else(|| panic!("no range diagnostic for {}: {diags:#?}", victim.name));
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.line, Some(line));
    assert_eq!(d.value, "99999999");
    assert!(d.origin.is_some(), "range diagnostics carry provenance");
    let rendered = d.to_string();
    assert!(rendered.contains(&victim.name), "{rendered}");
    assert!(rendered.contains("99999999"), "{rendered}");
}

#[test]
fn unknown_key_suggestions_survive_persistence() {
    let spec = spex::systems::system_by_name("VSFTP").unwrap();
    let built = BuiltSystem::build(spec);
    let (db, _env) = infer_and_persist(&built);
    let known = db.param_names().next().unwrap().to_string();
    let typo = format!("{}x", &known[..known.len() - 1]);
    let text = match built.gen.dialect {
        spex::conf::Dialect::KeyValue => format!("{typo} = 1\n"),
        _ => format!("{typo} 1\n"),
    };
    let diags = Checker::new(&db).check_text(&text);
    assert_eq!(diags.len(), 1, "{diags:#?}");
    assert_eq!(diags[0].category, "unknown-key");
    let suggestion = diags[0].suggestion.as_deref().expect("a did-you-mean");
    assert!(
        suggestion.contains(&known) || suggestion.contains("did you mean"),
        "{suggestion}"
    );
}
