//! Integration tests for `spex-check`: the infer → persist → check
//! pipeline over the seven generated subject systems.
//!
//! The acceptance bar mirrors the paper's goal for proactive validation:
//! each system's pristine default configuration must check clean, while
//! ≥ 90% of the configurations corrupted by the SPEX-INJ generation rules
//! must be flagged — without ever re-running inference (the borrowed
//! [`CheckSession`] only sees the persisted [`ConstraintDb`]). On top,
//! every emitted diagnostic must carry a stable `SPEX-Rxxx` code that
//! round-trips through the JSON Lines renderer.

use spex::check::{CheckSession, ConstraintDb, JsonLinesRenderer, Report, Severity, StaticEnv};
use spex::core::{Annotation, DiagCode, Spex};
use spex::inject::{genrule, standard_rules, Misconfig};
use spex::systems::{all_systems, BuiltSystem};

/// Builds one system, runs inference once, and persists the constraints
/// plus the deployment-environment model the checker needs.
fn infer_and_persist(built: &BuiltSystem) -> (ConstraintDb, StaticEnv) {
    let anns = Annotation::parse(&built.gen.annotations).expect("annotations parse");
    let analysis = Spex::analyze(built.module.clone(), &anns);
    let mut db = ConstraintDb::from_analysis(built.spec.name, built.gen.dialect, &analysis);
    // The full parameter universe is known from the system's documentation
    // (here: the spec); parameters inference did not reach are still legal
    // keys.
    db.note_params(built.spec.params.iter().map(|p| p.name.as_str()));

    // Mirror the modelled world of `BuiltSystem::world` (§4's harness):
    // port 80 occupied, the template's files and dirs present, the stock
    // users/groups/hosts known.
    let mut env = StaticEnv::new();
    env.occupy_port(80);
    for (f, _) in &built.gen.world_files {
        env.add_file(f);
    }
    for d in &built.gen.world_dirs {
        env.add_dir(d);
    }
    for u in ["root", "nobody", "daemon"] {
        env.add_user(u);
    }
    for g in ["root", "daemon"] {
        env.add_group(g);
    }
    env.add_host("localhost");

    // The save/load round-trip is part of the contract: the checker runs
    // from the persisted form, never from the in-memory analysis.
    let db = ConstraintDb::load_from_str(&db.save_to_string()).expect("db round-trips");
    (db, env)
}

/// Applies one generated misconfiguration to the template config.
fn corrupt(built: &BuiltSystem, m: &Misconfig) -> String {
    let mut conf = spex::conf::ConfFile::parse(&built.gen.template_conf, built.gen.dialect);
    conf.set(&m.param, &m.value);
    for (p, v) in &m.also_set {
        conf.set(p, v);
    }
    conf.serialize()
}

#[test]
fn constraint_db_round_trips_losslessly_for_every_system() {
    for spec in all_systems() {
        let built = BuiltSystem::build(spec);
        let anns = Annotation::parse(&built.gen.annotations).unwrap();
        let analysis = Spex::analyze(built.module.clone(), &anns);
        let db = ConstraintDb::from_analysis(built.spec.name, built.gen.dialect, &analysis);
        let text = db.save_to_string();
        let back = ConstraintDb::load_from_str(&text).unwrap();
        let mut want = db.clone();
        want.canonicalize();
        assert_eq!(
            want, back,
            "{}: save/load changed the database",
            built.spec.name
        );
        assert_eq!(
            text,
            back.save_to_string(),
            "{}: re-serialization is not stable",
            built.spec.name
        );
        assert!(
            db.constraint_count() > 0,
            "{}: empty database",
            built.spec.name
        );
    }
}

#[test]
fn pristine_defaults_check_clean_and_corrupted_configs_are_flagged() {
    let mut total = 0usize;
    let mut flagged = 0usize;
    let mut per_system: Vec<(String, usize, usize)> = Vec::new();

    for spec in all_systems() {
        let built = BuiltSystem::build(spec);
        let (db, env) = infer_and_persist(&built);
        let system = built.spec.name.to_string();
        let session = CheckSession::new(&db).with_env(&env);

        // File 0: the pristine template; then the corrupted corpus —
        // every SPEX-INJ generation rule applied to the persisted
        // constraints, one corrupted file per misconfiguration (capped
        // per system to keep the suite fast; the cap is far above the
        // statistical noise floor).
        let constraints: Vec<_> = db
            .params
            .iter()
            .flat_map(|p| p.constraints.iter().cloned())
            .collect();
        let misconfigs = genrule::generate_all(&standard_rules(), &constraints);
        assert!(
            misconfigs.len() >= 20,
            "{system}: too few generated misconfigurations ({})",
            misconfigs.len()
        );
        let cap = 400;
        let step = (misconfigs.len() / cap).max(1);
        let sampled: Vec<&Misconfig> = misconfigs.iter().step_by(step).collect();

        let mut files: Vec<(String, String)> =
            vec![("default.conf".into(), built.gen.template_conf.clone())];
        files.extend(
            sampled
                .iter()
                .enumerate()
                .map(|(i, m)| (format!("corrupt_{i}.conf"), corrupt(&built, m))),
        );
        let report = session.check_texts(&files);
        assert_eq!(report.stats.files, files.len());

        // Pristine template: zero diagnostics.
        assert!(
            report.files[0].is_clean(),
            "{system}: pristine default config flagged: {:#?}",
            report.files[0].diagnostics
        );

        let system_flagged = report.files[1..]
            .iter()
            .filter(|r| !r.diagnostics.is_empty())
            .count();
        total += sampled.len();
        flagged += system_flagged;
        per_system.push((system, sampled.len(), sampled.len() - system_flagged));

        // The aggregate stats agree with the per-file reports.
        assert_eq!(report.stats.flagged_files, system_flagged);
        assert_eq!(report.stats.clean_files, files.len() - system_flagged);
    }

    // Corrupted corpus: ≥ 90% flagged overall.
    let rate = flagged as f64 / total as f64;
    assert!(
        rate >= 0.90,
        "only {flagged}/{total} = {rate:.3} of corrupted configs flagged; \
         per system (name, corrupted, missed): {per_system:?}"
    );
}

/// The 0.3 acceptance criterion: every diagnostic emitted anywhere in the
/// workspace carries a stable `SPEX-Rxxx` code, and the code round-trips
/// through the JSON Lines renderer byte-identically.
#[test]
fn every_diagnostic_code_round_trips_through_the_json_renderer() {
    use spex::check::json::Json;
    let mut codes_seen = std::collections::BTreeSet::new();
    for spec in all_systems() {
        let built = BuiltSystem::build(spec);
        let (db, env) = infer_and_persist(&built);
        let session = CheckSession::new(&db).with_env(&env);

        let constraints: Vec<_> = db
            .params
            .iter()
            .flat_map(|p| p.constraints.iter().cloned())
            .collect();
        let misconfigs = genrule::generate_all(&standard_rules(), &constraints);
        let step = (misconfigs.len() / 60).max(1);
        let files: Vec<(String, String)> = misconfigs
            .iter()
            .step_by(step)
            .enumerate()
            .map(|(i, m)| (format!("c{i}.conf"), corrupt(&built, m)))
            .collect();
        let report = session.check_texts(&files);

        // Structured side: every diagnostic's code parses back.
        for (_, d) in report.findings() {
            assert_eq!(DiagCode::parse(d.code.as_str()), Some(d.code));
            codes_seen.insert(d.code.as_str());
        }

        // Rendered side: the JSON Lines output validates and yields the
        // exact same code sequence.
        let jsonl = report.render(&JsonLinesRenderer);
        let validated = JsonLinesRenderer::validate(&jsonl)
            .unwrap_or_else(|e| panic!("{}: invalid JSON Lines: {e}", built.spec.name));
        assert_eq!(validated, report.findings().count());
        let rendered_codes: Vec<String> = jsonl
            .lines()
            .filter_map(|l| {
                let obj = Json::parse(l).ok()?;
                if obj.get("type")?.as_str()? != "finding" {
                    return None;
                }
                Some(obj.get("code")?.as_str()?.to_string())
            })
            .collect();
        let structured_codes: Vec<String> = report
            .findings()
            .map(|(_, d)| d.code.as_str().to_string())
            .collect();
        assert_eq!(rendered_codes, structured_codes, "{}", built.spec.name);
    }
    assert!(
        codes_seen.len() >= 4,
        "the corpus should exercise most of the code namespace, saw {codes_seen:?}"
    );
}

#[test]
fn checker_pinpoints_line_value_code_and_provenance() {
    let spec = spex::systems::system_by_name("OpenLDAP").unwrap();
    let built = BuiltSystem::build(spec);
    let (db, env) = infer_and_persist(&built);

    // Corrupt one known range parameter in place.
    let mut conf = spex::conf::ConfFile::parse(&built.gen.template_conf, built.gen.dialect);
    let victim = db
        .params
        .iter()
        .find(|p| {
            p.constraints
                .iter()
                .any(|c| matches!(c.kind, spex::core::ConstraintKind::Range(_)))
        })
        .expect("a range-constrained parameter");
    conf.set(&victim.name, "99999999");
    let line = conf.line_of(&victim.name).unwrap();

    let diags = CheckSession::new(&db).with_env(&env).check(&conf);
    let d = diags
        .iter()
        .find(|d| d.param == victim.name && d.code == DiagCode::Range)
        .unwrap_or_else(|| panic!("no range diagnostic for {}: {diags:#?}", victim.name));
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.category(), "data-range");
    assert_eq!(d.line, Some(line));
    assert_eq!(d.value, "99999999");
    assert!(d.origin.is_some(), "range diagnostics carry provenance");
    let rendered = d.to_string();
    assert!(rendered.contains(&victim.name), "{rendered}");
    assert!(rendered.contains("99999999"), "{rendered}");
    assert!(rendered.contains("SPEX-R003"), "{rendered}");
}

#[test]
fn unknown_key_suggestions_survive_persistence() {
    let spec = spex::systems::system_by_name("VSFTP").unwrap();
    let built = BuiltSystem::build(spec);
    let (db, _env) = infer_and_persist(&built);
    let known = db.param_names().next().unwrap().to_string();
    let typo = format!("{}x", &known[..known.len() - 1]);
    let text = match built.gen.dialect {
        spex::conf::Dialect::KeyValue => format!("{typo} = 1\n"),
        _ => format!("{typo} 1\n"),
    };
    let diags = CheckSession::new(&db).check_text(&text);
    assert_eq!(diags.len(), 1, "{diags:#?}");
    assert_eq!(diags[0].code, DiagCode::UnknownKey);
    let suggestion = diags[0].suggestion.as_deref().expect("a did-you-mean");
    assert!(
        suggestion.contains(&known) || suggestion.contains("did you mean"),
        "{suggestion}"
    );
}

/// Batch checking through the session is deterministic across thread
/// counts: the same files produce byte-identical reports whether one
/// worker or eight drain the queue.
#[test]
fn batch_report_is_identical_across_thread_counts() {
    let spec = spex::systems::system_by_name("Apache").unwrap();
    let built = BuiltSystem::build(spec);
    let (db, env) = infer_and_persist(&built);
    let broken = format!("{}zzz_unknown_key 1\n", built.gen.template_conf);
    let files: Vec<(String, String)> = (0..16)
        .map(|i| (format!("conf-{i:02}"), broken.clone()))
        .collect();

    let serial: Report = CheckSession::new(&db)
        .with_env(&env)
        .with_threads(1)
        .check_texts(&files);
    for threads in [2, 8] {
        let parallel: Report = CheckSession::new(&db)
            .with_env(&env)
            .with_threads(threads)
            .check_texts(&files);
        assert_eq!(parallel.files, serial.files, "at {threads} threads");
        assert_eq!(parallel.stats, serial.stats);
    }
}
