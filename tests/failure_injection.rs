//! Failure-injection tests: drive the harness through every reaction class
//! of Table 3 with purpose-built subject snippets, and exercise the
//! modelled OS's failure modes.

use spex::inject::{
    CampaignOptions, InjectionCampaign, Misconfig, Phase, Reaction, TestCase, TestTarget,
};
use spex::lang::diag::Span;
use spex::vm::{Signal, Value, Vm, VmHalt, World};
use std::collections::HashMap;

fn misconfig(param: &str, value: &str, violates: &'static str) -> Misconfig {
    Misconfig {
        param: param.into(),
        value: value.into(),
        also_set: vec![],
        description: String::new(),
        violates,
        origin: ("startup".into(), Span::new(1, 1)),
    }
}

/// One subject exhibiting every reaction class behind a different
/// parameter.
const TAXONOMY_SUBJECT: &str = r#"
    int crash_knob = 4;
    int hang_knob = 1;
    int term_knob = 10;
    int fail_knob = 1;
    int clamp_knob = 8;
    int dep_knob = 2;
    int gate = 1;
    int good_knob = 5;
    int table[16];
    int fail_flag = 0;

    int handle_config(char* name, char* value) {
        if (strcmp(name, "crash_knob") == 0) { crash_knob = atoi(value); }
        if (strcmp(name, "hang_knob") == 0) { hang_knob = atoi(value); }
        if (strcmp(name, "term_knob") == 0) { term_knob = atoi(value); }
        if (strcmp(name, "fail_knob") == 0) { fail_knob = atoi(value); }
        if (strcmp(name, "clamp_knob") == 0) { clamp_knob = atoi(value); }
        if (strcmp(name, "dep_knob") == 0) { dep_knob = atoi(value); }
        if (strcmp(name, "gate") == 0) { gate = atoi(value); }
        if (strcmp(name, "good_knob") == 0) {
            good_knob = atoi(value);
            if (good_knob > 9) {
                fprintf(stderr, "good_knob must be at most 9, got %s", value);
                return -1;
            }
        }
        return 0;
    }

    int startup() {
        table[crash_knob] = 1;
        sleep(hang_knob);
        if (term_knob > 50) { exit(1); }
        if (clamp_knob > 100) { clamp_knob = 100; }
        fail_flag = fail_knob < 0;
        if (gate != 0) { int used = dep_knob + 1; }
        return 0;
    }

    int test_flags() { return fail_flag; }
    int test_quick() { return 0; }
"#;

fn target(module: &spex::ir::Module) -> TestTarget<'_> {
    let mut param_globals = HashMap::new();
    for p in [
        "crash_knob",
        "hang_knob",
        "term_knob",
        "fail_knob",
        "clamp_knob",
        "dep_knob",
        "gate",
        "good_knob",
    ] {
        param_globals.insert(p.to_string(), p.to_string());
    }
    TestTarget {
        name: "taxonomy".into(),
        module,
        dialect: spex::conf::Dialect::KeyValue,
        template_conf: "crash_knob = 4\nhang_knob = 1\n".into(),
        config_entry: "handle_config".into(),
        startup: "startup".into(),
        tests: vec![
            TestCase {
                name: "flags".into(),
                func: "test_flags".into(),
                cost: 5,
            },
            TestCase {
                name: "quick".into(),
                func: "test_quick".into(),
                cost: 1,
            },
        ],
        world: Box::new(World::default),
        param_globals,
    }
}

fn build() -> spex::ir::Module {
    let program = spex::lang::parse_program(TAXONOMY_SUBJECT).unwrap();
    spex::ir::lower_program(&program).unwrap()
}

#[test]
fn every_reaction_class_is_reachable() {
    let module = build();
    let campaign = InjectionCampaign::new(target(&module));

    let cases: Vec<(Misconfig, Reaction)> = vec![
        (
            misconfig("crash_knob", "9999", "data-range"),
            Reaction::Crash(Signal::Segv),
        ),
        (
            misconfig("hang_knob", "999999999", "semantic-type"),
            Reaction::Hang,
        ),
        (
            misconfig("term_knob", "100", "data-range"),
            Reaction::EarlyTermination,
        ),
        (
            misconfig("fail_knob", "-3", "data-range"),
            Reaction::FunctionalFailure,
        ),
        (
            misconfig("clamp_knob", "500", "data-range"),
            Reaction::SilentViolation,
        ),
        (
            misconfig("good_knob", "99", "data-range"),
            Reaction::GoodReaction,
        ),
        (misconfig("good_knob", "7", "data-range"), Reaction::Benign),
    ];
    for (m, expected) in cases {
        let out = campaign.run_one(&m);
        assert_eq!(
            out.reaction, expected,
            "{} = {} (phase {:?}, logs: {})",
            m.param, m.value, out.phase, out.logs
        );
    }

    // Silent ignorance needs the dependency scenario: gate off + dep set.
    let mut dep = misconfig("dep_knob", "5", "control-dep");
    dep.also_set.push(("gate".into(), "off".into()));
    let out = campaign.run_one(&dep);
    assert_eq!(
        out.reaction,
        Reaction::SilentIgnorance,
        "logs: {}",
        out.logs
    );
    assert_eq!(out.phase, Phase::Done);
}

#[test]
fn optimization_ablation_reduces_cost() {
    let module = build();
    // A failing run measures the saving: with stop-at-first-failure and
    // shortest-first, only the cheap test runs before the failure is
    // localised... here the failing test is the expensive one, so sorting
    // runs `quick` (cost 1) first and both configurations run both tests;
    // the measurable difference appears on the passing run where early-stop
    // cannot trigger but sorting still changes nothing. Assert the
    // monotonicity contract instead: optimized cost <= naive cost for the
    // same misconfig set.
    let fail = misconfig("fail_knob", "-3", "data-range");
    let optimized = InjectionCampaign::new(target(&module))
        .with_options(CampaignOptions {
            stop_at_first_failure: true,
            sort_tests_by_cost: true,
        })
        .run_one(&fail)
        .cost_spent;
    let naive = InjectionCampaign::new(target(&module))
        .with_options(CampaignOptions {
            stop_at_first_failure: false,
            sort_tests_by_cost: false,
        })
        .run_one(&fail)
        .cost_spent;
    assert!(optimized <= naive, "optimized {optimized} > naive {naive}");
}

#[test]
fn vm_failure_modes() {
    let src = r#"
        int deep(int n) { if (n <= 0) { return 0; } return deep(n - 1) + 1; }
        int recurse_forever(int n) { return recurse_forever(n + 1); }
        int overflow_sprintf(char* dst, char* payload) {
            return sprintf(dst, "%s-%s", payload, payload);
        }
    "#;
    let program = spex::lang::parse_program(src).unwrap();
    let module = spex::ir::lower_program(&program).unwrap();
    let mut vm = Vm::new(&module, World::default());

    // Bounded recursion is fine; unbounded recursion is a stack overflow.
    assert_eq!(vm.call("deep", &[Value::Int(20)]).unwrap(), Value::Int(20));
    assert_eq!(
        vm.call("recurse_forever", &[Value::Int(0)]).unwrap_err(),
        VmHalt::Fatal(Signal::Segv)
    );

    // sprintf into an undersized buffer overflows.
    let small = Value::str("tiny");
    let huge_payload = Value::str(&"x".repeat(200));
    assert_eq!(
        vm.call("overflow_sprintf", &[small, huge_payload])
            .unwrap_err(),
        VmHalt::Fatal(Signal::Segv)
    );
}
