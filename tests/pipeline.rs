//! End-to-end integration tests: front-end → IR → inference → injection →
//! design detection, on both hand-written systems and the generated
//! subject systems.

use spex::core::{evaluate_accuracy, Annotation, ConstraintKind, Spex};
use spex::design::DesignReport;
use spex::inject::{
    genrule, standard_rules, CampaignReport, InjectionCampaign, Reaction, TestTarget,
};
use spex::systems::BuiltSystem;
use std::collections::HashMap;

/// A compact hand-written server exercising every constraint kind at once.
const FULL_SERVER: &str = r#"
    int worker_threads = 8;
    int min_len = 4;
    int max_len = 84;
    int use_tls = 1;
    int tls_timeout = 30;
    char* cert_file = "/etc/app/cert.pem";
    int listen_port = 8443;
    int relok = 0;
    int scratch[65];

    struct opt_int { char* name; int* var; };
    struct opt_str { char* name; char** var; };
    struct opt_int int_options[] = {
        { "worker_threads", &worker_threads },
        { "min_len", &min_len },
        { "max_len", &max_len },
        { "use_tls", &use_tls },
        { "tls_timeout", &tls_timeout },
        { "listen_port", &listen_port },
    };
    struct opt_str str_options[] = {
        { "cert_file", &cert_file },
    };

    int handle_config(char* name, char* value) {
        int i;
        for (i = 0; i < 6; i++) {
            if (strcmp(int_options[i].name, name) == 0) {
                *(int_options[i].var) = atoi(value);
                return 0;
            }
        }
        for (i = 0; i < 1; i++) {
            if (strcmp(str_options[i].name, name) == 0) {
                *(str_options[i].var) = strdup(value);
                return 0;
            }
        }
        return 0;
    }

    int startup() {
        scratch[worker_threads] = 1;
        if (use_tls != 0) {
            sleep(tls_timeout);
            if (open(cert_file, 0) < 0) {
                fprintf(stderr, "cannot open cert_file %s", cert_file);
                exit(1);
            }
        }
        int s = socket(0, 0, 0);
        if (bind(s, listen_port) < 0) {
            fprintf(stderr, "cannot bind listen_port %d", listen_port);
            exit(1);
        }
        listen(s, 16);
        int len = 12;
        relok = 0;
        if (len >= min_len && len < max_len) {
            relok = 1;
        }
        return 0;
    }

    int test_lengths() { return relok == 0; }
    int test_smoke() { return 0; }
"#;

const FULL_ANN: &str = "{ @STRUCT = int_options\n @PAR = [opt_int, 1]\n @VAR = [opt_int, 2] }\n\
                        { @STRUCT = str_options\n @PAR = [opt_str, 1]\n @VAR = [opt_str, 2] }";

fn analyze_full_server() -> spex::core::SpexAnalysis {
    let program = spex::lang::parse_program(FULL_SERVER).unwrap();
    let module = spex::ir::lower_program(&program).unwrap();
    let anns = Annotation::parse(FULL_ANN).unwrap();
    Spex::analyze(module, &anns)
}

#[test]
fn infers_all_five_constraint_kinds() {
    let analysis = analyze_full_server();
    let categories: std::collections::HashSet<&str> = analysis
        .all_constraints()
        .map(|c| c.kind.category())
        .collect();
    assert!(categories.contains("basic-type"));
    assert!(categories.contains("semantic-type"));
    assert!(categories.contains("control-dep"));
    assert!(categories.contains("value-rel"));
}

#[test]
fn semantic_types_match_the_apis() {
    let analysis = analyze_full_server();
    let sem_of = |p: &str| -> Vec<String> {
        analysis
            .param(p)
            .unwrap()
            .constraints
            .iter()
            .filter_map(|c| match &c.kind {
                ConstraintKind::SemanticType(s) => Some(s.to_string()),
                _ => None,
            })
            .collect()
    };
    assert!(sem_of("cert_file").contains(&"FILE".to_string()));
    assert!(sem_of("listen_port").contains(&"PORT".to_string()));
    assert!(sem_of("tls_timeout").contains(&"TIME(s)".to_string()));
}

#[test]
fn dependency_on_tls_flag_is_found() {
    let analysis = analyze_full_server();
    let dep = analysis
        .all_constraints()
        .find_map(|c| match &c.kind {
            ConstraintKind::ControlDep(d) if d.controller == "use_tls" => Some(d.clone()),
            _ => None,
        })
        .expect("a control dependency on use_tls");
    assert!(dep.dependent == "tls_timeout" || dep.dependent == "cert_file");
}

fn full_server_target(module: &spex::ir::Module) -> TestTarget<'_> {
    let mut param_globals = HashMap::new();
    for p in [
        "worker_threads",
        "min_len",
        "max_len",
        "use_tls",
        "tls_timeout",
        "listen_port",
    ] {
        param_globals.insert(p.to_string(), p.to_string());
    }
    TestTarget {
        name: "full-server".into(),
        module,
        dialect: spex::conf::Dialect::KeyValue,
        template_conf: "worker_threads = 8\nlisten_port = 8443\n".into(),
        config_entry: "handle_config".into(),
        startup: "startup".into(),
        tests: vec![
            spex::inject::TestCase {
                name: "lengths".into(),
                func: "test_lengths".into(),
                cost: 2,
            },
            spex::inject::TestCase {
                name: "smoke".into(),
                func: "test_smoke".into(),
                cost: 1,
            },
        ],
        world: Box::new(|| {
            let mut w = spex::vm::World::default();
            w.occupy_port(80);
            w.add_file("/etc/app/cert.pem", "cert");
            w.add_dir("/etc/app");
            w
        }),
        param_globals,
    }
}

#[test]
fn injection_exposes_crash_and_functional_failure() {
    let program = spex::lang::parse_program(FULL_SERVER).unwrap();
    let module = spex::ir::lower_program(&program).unwrap();
    let analysis = {
        let anns = Annotation::parse(FULL_ANN).unwrap();
        Spex::analyze(module.clone(), &anns)
    };
    let constraints: Vec<_> = analysis.all_constraints().cloned().collect();
    let misconfigs = genrule::generate_all(&standard_rules(), &constraints);
    assert!(!misconfigs.is_empty());

    let campaign = InjectionCampaign::new(full_server_target(&module));
    let outcomes = campaign.run(&misconfigs);
    let report = CampaignReport::from_outcomes(&outcomes);

    // The unchecked scratch index crashes on overflowing thread counts.
    assert!(
        outcomes
            .iter()
            .any(|o| matches!(o.reaction, Reaction::Crash(_))),
        "expected a crash among {:?}",
        report.by_reaction
    );
    // The min/max violation fails the functional test without pinpointing.
    assert!(
        outcomes
            .iter()
            .any(|o| o.reaction == Reaction::FunctionalFailure),
        "expected a functional failure among {:?}",
        report.by_reaction
    );
    // The checked port/file parameters produce pinpointing good reactions.
    assert!(report.good_reactions > 0);
}

#[test]
fn generated_openldap_full_pipeline() {
    let spec = spex::systems::system_by_name("OpenLDAP").unwrap();
    let built = BuiltSystem::build(spec);
    // Generated code passes the IR verifier.
    let program = spex::lang::parse_program(&built.gen.source).unwrap();
    let module = spex::ir::lower_program(&program).unwrap();
    assert!(spex::ir::verify::verify_module(&module).is_empty());

    // Inference covers (nearly) all parameters and matches ground truth
    // away from the planted alias noise.
    let anns = Annotation::parse(&built.gen.annotations).unwrap();
    let analysis = Spex::analyze(built.module.clone(), &anns);
    assert!(analysis.reports.len() >= built.spec.param_count() * 9 / 10);
    let constraints: Vec<_> = analysis.all_constraints().cloned().collect();
    let acc = evaluate_accuracy(&constraints, &built.gen.truth);
    assert!(
        acc.overall() > 0.85,
        "accuracy {:.2} by {:?}",
        acc.overall(),
        acc.by_category
    );

    // A valid default configuration starts and passes its tests.
    let mut vm = spex::vm::Vm::new(&built.module, built.world());
    for (name, value) in
        spex::conf::ConfFile::parse(&built.gen.template_conf, built.gen.dialect).settings()
    {
        let r = vm
            .call(
                "handle_config",
                &[spex::vm::Value::str(name), spex::vm::Value::str(value)],
            )
            .unwrap();
        assert_eq!(r, spex::vm::Value::Int(0), "default {name} rejected");
    }
    assert_eq!(vm.call("startup", &[]).unwrap(), spex::vm::Value::Int(0));
    for t in &built.gen.tests {
        assert_eq!(
            vm.call(&t.func, &[]).unwrap(),
            spex::vm::Value::Int(0),
            "default config fails test {}",
            t.name
        );
    }
}

#[test]
fn generated_vsftp_exposes_silent_ignorance() {
    let spec = spex::systems::system_by_name("VSFTP").unwrap();
    let built = BuiltSystem::build(spec);
    let anns = Annotation::parse(&built.gen.annotations).unwrap();
    let analysis = Spex::analyze(built.module.clone(), &anns);
    let deps: Vec<_> = analysis
        .all_constraints()
        .filter(|c| {
            matches!(&c.kind, ConstraintKind::ControlDep(d)
                if d.controller.starts_with("ftpd_flag"))
        })
        .cloned()
        .collect();
    assert!(
        deps.len() >= 20,
        "VSFTP is dependency-heavy, got {}",
        deps.len()
    );

    // Inject one dependency violation and observe silent ignorance.
    let misconfigs = genrule::generate_all(&standard_rules(), &deps[..1]);
    let world_files = built.gen.world_files.clone();
    let world_dirs = built.gen.world_dirs.clone();
    let target = TestTarget {
        name: "VSFTP".into(),
        module: &built.module,
        dialect: built.gen.dialect,
        template_conf: built.gen.template_conf.clone(),
        config_entry: "handle_config".into(),
        startup: "startup".into(),
        tests: built.gen.tests.clone(),
        world: Box::new(move || {
            let mut w = spex::vm::World::default();
            w.occupy_port(80);
            for (f, c) in &world_files {
                w.add_file(f, c);
            }
            for d in &world_dirs {
                w.add_dir(d);
            }
            w
        }),
        param_globals: built.gen.param_globals.clone(),
    };
    let outcomes = InjectionCampaign::new(target).run(&misconfigs);
    assert!(outcomes
        .iter()
        .any(|o| o.reaction == Reaction::SilentIgnorance));
}

#[test]
fn design_detectors_on_generated_apache() {
    let spec = spex::systems::system_by_name("Apache").unwrap();
    let built = BuiltSystem::build(spec);
    let anns = Annotation::parse(&built.gen.annotations).unwrap();
    let analysis = Spex::analyze(built.module.clone(), &anns);
    let report = DesignReport::analyze(&analysis, &built.gen.manual);
    // Apache mixes case conventions (Table 6) and has one overruled enum
    // (Table 8) and 27 unsafely parsed parameters.
    assert!(report.case.is_inconsistent());
    assert_eq!(report.overruling.len(), 1);
    let unsafe_params = spex::design::unsafe_api::affected_params(&report.unsafe_apis);
    assert_eq!(unsafe_params.len(), 27);
    // MaxMemFree is the KB outlier among byte-sized parameters.
    assert!(report.units.size_inconsistent());
    assert!(report
        .units
        .size_minority()
        .iter()
        .any(|p| p.as_str() == "MaxMemFree"));
}
