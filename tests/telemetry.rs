//! Integration tests for the `spex-obs` telemetry subsystem as wired
//! through the public API: zero-cost no-op when disabled, full span/metric
//! coverage of the inference and checking paths when enabled, and
//! deterministic count signatures across identical runs.

use spex::check::CheckSession;
use spex::conf::Dialect;
use spex::obs;
use spex::Workspace;

const ANN: &str = "{ @STRUCT = options\n @PAR = [opt, 1]\n @VAR = [opt, 2] }";

/// Two parameters, each used by its own function (same fixture as the
/// workspace tests, so the expected pass counts are known).
const BASE: &str = r#"
    int threads = 4;
    int nap = 30;
    struct opt { char* name; int* var; };
    struct opt options[] = { { "threads", &threads }, { "nap", &nap } };
    void startup() {
        if (threads < 1) { exit(1); }
        if (threads > 16) { exit(1); }
    }
    void napper() { sleep(nap); }
"#;

fn workspace_over(source: &str) -> Workspace {
    let mut ws = Workspace::new("Test", Dialect::KeyValue);
    ws.add_module("main.c", source, ANN).unwrap();
    ws
}

/// The no-op guarantee: a workspace that never enabled telemetry records
/// no spans and allocates no span labels anywhere in a cold run, a warm
/// run, or a check — asserted with the thread-local probe counters (the
/// same lineage-counter style PR 3 used for clone counts).
#[test]
fn disabled_workspace_records_nothing() {
    let mut ws = workspace_over(BASE);
    let spans_before = obs::probe::thread_spans_recorded();
    let labels_before = obs::probe::thread_labels_allocated();

    ws.reanalyze();
    let probed = format!("{BASE}\nvoid probe() {{ exit(1); }}\n");
    ws.update_module("main.c", &probed).unwrap();
    ws.reanalyze();
    assert!(!ws.check_text("threads = 99\n").is_empty());

    assert_eq!(
        obs::probe::thread_spans_recorded(),
        spans_before,
        "disabled telemetry must record zero spans"
    );
    assert_eq!(
        obs::probe::thread_labels_allocated(),
        labels_before,
        "disabled telemetry must allocate zero span labels"
    );
    assert!(ws.telemetry().is_empty(), "no recorder, empty snapshot");
}

/// The coverage guarantee: one instrumented cold-run + warm-run + check
/// leaves spans for all five inference passes, the shared artifacts
/// (mapping, taint, dataflow preparation), the workspace entry points and
/// the check path, plus the pass/cache/diagnostic counters the snapshot
/// renderers expose.
#[test]
fn snapshot_covers_all_passes_and_check_path() {
    let mut ws = workspace_over(BASE);
    ws.enable_telemetry();
    ws.reanalyze();

    // Cold run: two parameters, so every per-parameter pass ran twice.
    let snap = ws.telemetry();
    for pass in [
        "infer.basic_type",
        "infer.semantic_type",
        "infer.range",
        "infer.control_dep",
        "infer.value_rel",
    ] {
        assert!(
            snap.span_count(pass) > 0,
            "missing span for {pass}:\n{}",
            snap.render_text()
        );
    }
    assert_eq!(snap.span_count("infer.param"), 2, "one span per parameter");
    assert_eq!(snap.span_count("infer.taint"), 2, "one slice per parameter");
    assert!(snap.span_count("infer.mapping") > 0);
    assert!(snap.span_count("dataflow.prepare") > 0);
    assert!(snap.span_count("dataflow.taint") > 0);
    assert_eq!(snap.span_count("workspace.reanalyze"), 1);
    assert_eq!(snap.counter("infer.pass.basic_type"), 2);
    assert_eq!(snap.counter("infer.pass.range"), 2);

    // Warm run after an isolated edit: the cache counters surface.
    let probed = format!("{BASE}\nvoid probe() {{ exit(1); }}\n");
    ws.update_module("main.c", &probed).unwrap();
    ws.reanalyze();
    let snap = ws.telemetry();
    assert_eq!(snap.span_count("workspace.update_module"), 1);
    assert_eq!(snap.counter("infer.cache.mapping.hits"), 1);
    assert_eq!(snap.counter("infer.cache.taint.hits"), 2);
    // Counters are cumulative: the two misses are the cold run's slices;
    // the warm run added none.
    assert_eq!(snap.counter("infer.cache.taint.misses"), 2);

    // Checking: per-file span, per-kind timing histograms, diagnostics
    // counters keyed by stable code.
    assert!(!ws.check_text("threads = 99\nnap = 10\n").is_empty());
    let snap = ws.telemetry();
    assert_eq!(snap.span_count("check.file"), 1);
    assert_eq!(snap.counter("check.files"), 1);
    assert_eq!(snap.counter("check.settings"), 2);
    assert!(snap.counter("check.diagnostics") > 0);
    assert!(snap.counter("check.diag.SPEX-R003") > 0, "range violation");

    // Both renderers agree the data is there.
    let text = snap.render_text();
    assert!(text.contains("workspace.reanalyze"), "{text}");
    assert!(text.contains("check.diagnostics"), "{text}");
    let json = snap.render_json();
    obs::json::Json::parse(&json).expect("snapshot JSON parses");
}

/// The determinism guarantee: two identical single-threaded runs produce
/// byte-identical count signatures (span paths and counts, counters,
/// histogram observation counts — everything except wall-clock timings
/// and scheduling-dependent gauges).
#[test]
fn identical_runs_have_identical_counts_signature() {
    let run = || {
        let mut ws = workspace_over(BASE);
        ws.enable_telemetry();
        ws.reanalyze();
        let probed = format!("{BASE}\nvoid probe() {{ exit(1); }}\n");
        ws.update_module("main.c", &probed).unwrap();
        ws.reanalyze();
        ws.check_text("threads = 99\nnap = 10\n");
        ws.telemetry().counts_signature()
    };
    let first = run();
    let second = run();
    assert!(!first.is_empty());
    assert_eq!(first, second, "identical runs must count identically");
}

/// Pool metrics: a multi-threaded batch check under an attached recorder
/// reports run/job counters and per-grab queue-depth samples whose counts
/// are independent of how the jobs landed on workers.
#[test]
fn pool_metrics_count_jobs_deterministically() {
    let mut ws = workspace_over(BASE);
    ws.reanalyze();
    let recorder = std::sync::Arc::new(obs::Recorder::new());
    let session = CheckSession::new(ws.db())
        .with_threads(4)
        .with_recorder(std::sync::Arc::clone(&recorder));
    let files: Vec<(String, String)> = (0..16)
        .map(|i| (format!("{i}.conf"), "threads = 99\n".to_string()))
        .collect();
    let report = session.check_texts(&files);
    assert_eq!(report.files.len(), 16);

    let snap = recorder.snapshot();
    assert_eq!(snap.counter("pool.runs"), 1);
    assert_eq!(snap.counter("pool.jobs"), 16);
    assert_eq!(snap.span_count("check.file"), 16, "one span per file");
    assert_eq!(snap.counter("check.files"), 16);
    let depth = snap
        .histograms
        .get("pool.queue.depth")
        .expect("queue depth sampled");
    assert_eq!(depth.count, 16, "one sample per job grab");
}
