//! Integration tests for the interprocedural summary layer: a range
//! check living in a helper callee must constrain the caller's parameter
//! exactly as the inline check would, the reaction analysis must credit
//! that helper check, and warm re-analysis must re-summarize only the
//! edited SCC plus its dependents.

use spex::check::Workspace;
use spex::conf::Dialect;
use spex::core::{Annotation, ConstraintKind, Spex, SpexAnalysis};
use spex::react::{classify_analysis, ReactionClass};

const ANN: &str = "{ @STRUCT = options\n @PAR = [opt, 1]\n @VAR = [opt, 2] }";

fn analyze(source: &str) -> SpexAnalysis {
    let program = spex::lang::parse_program(source).unwrap();
    let module = spex::ir::lower_program(&program).unwrap();
    let anns = Annotation::parse(ANN).unwrap();
    Spex::analyze(module, &anns)
}

/// The interval of the parameter's range constraint, if it has one.
fn range_interval(analysis: &SpexAnalysis, param: &str) -> Option<(Option<i64>, Option<i64>)> {
    analysis
        .param(param)
        .expect("parameter mapped")
        .constraints
        .iter()
        .find_map(|c| match &c.kind {
            ConstraintKind::Range(r) => r.valid_interval(),
            _ => None,
        })
}

/// The range check lives entirely inside a predicate helper; the caller
/// only branches on its result.
const HELPER_CHECK: &str = r#"
    int listen_port = 8080;
    struct opt { char* name; int* var; };
    struct opt options[] = { { "listen_port", &listen_port } };
    int valid_port(int p) { return p >= 1 && p <= 65535; }
    void startup() {
        if (valid_port(listen_port) == 0) {
            fprintf(stderr, "listen_port out of range");
            exit(1);
        }
        bind(0, listen_port);
    }
"#;

/// The same guard written inline — the intraprocedural baseline the
/// helper variant must match.
const INLINE_CHECK: &str = r#"
    int listen_port = 8080;
    struct opt { char* name; int* var; };
    struct opt options[] = { { "listen_port", &listen_port } };
    void startup() {
        if (listen_port < 1) {
            fprintf(stderr, "listen_port out of range");
            exit(1);
        }
        if (listen_port > 65535) {
            fprintf(stderr, "listen_port out of range");
            exit(1);
        }
        bind(0, listen_port);
    }
"#;

/// The helper is called but its verdict is ignored — what the analysis
/// sees when no call-site branch consumes the predicate. This is the
/// intraprocedural result for [`HELPER_CHECK`]: without summaries the
/// caller has no comparison on `listen_port` at all.
const IGNORED_CHECK: &str = r#"
    int listen_port = 8080;
    struct opt { char* name; int* var; };
    struct opt options[] = { { "listen_port", &listen_port } };
    int valid_port(int p) { return p >= 1 && p <= 65535; }
    void startup() {
        valid_port(listen_port);
        bind(0, listen_port);
    }
"#;

/// The tentpole acceptance criterion, range half: the predicate summary
/// of `valid_port` turns the caller's branch into the same `[1, 65535]`
/// range constraint the inline checks produce.
#[test]
fn helper_predicate_check_tightens_range_like_inline() {
    let helper = analyze(HELPER_CHECK);
    let inline = analyze(INLINE_CHECK);
    let got = range_interval(&helper, "listen_port");
    assert_eq!(
        got,
        Some((Some(1), Some(65535))),
        "helper-guarded parameter gains the callee's bounds"
    );
    assert_eq!(
        got,
        range_interval(&inline, "listen_port"),
        "summary-derived interval matches the inline-check baseline"
    );

    // Control: with the predicate's verdict discarded there is no
    // call-site branch to interpret, so no range constraint appears —
    // the delta above really comes from the check summary.
    let ignored = analyze(IGNORED_CHECK);
    assert_eq!(range_interval(&ignored, "listen_port"), None);
}

/// The tentpole acceptance criterion, reaction half: the same fixture
/// flips `SPEX-V004` (unchecked) to `SPEX-V001` (checked with message)
/// because the dominating check lives in the callee.
#[test]
fn helper_predicate_check_flips_reaction_to_checked() {
    let class_of = |analysis: &SpexAnalysis| {
        classify_analysis(analysis)
            .into_iter()
            .find(|f| f.param == "listen_port")
            .expect("listen_port classified")
            .class
    };
    assert_eq!(
        class_of(&analyze(HELPER_CHECK)),
        ReactionClass::CheckedWithMessage,
        "call-site branch on the helper's verdict is a real check"
    );
    assert_eq!(
        class_of(&analyze(IGNORED_CHECK)),
        ReactionClass::Unchecked,
        "discarding the verdict leaves the parameter unchecked"
    );
}

/// A three-deep call chain plus one unrelated function. Editing the leaf
/// must re-summarize exactly the leaf's SCC and its transitive callers,
/// and re-infer only the parameter whose slice crosses the edit.
const CHAIN_V1: &str = r#"
    int knob = 8;
    int other_knob = 2;
    struct opt { char* name; int* var; };
    struct opt options[] = { { "knob", &knob }, { "other_knob", &other_knob } };
    int leaf(int x) { return x > 4; }
    int mid(int x) { return leaf(x); }
    int top(int x) { return mid(x); }
    void startup() {
        if (top(knob) == 0) { fprintf(stderr, "bad knob"); exit(1); }
        listen(0, knob);
    }
    void use_other() { sleep(other_knob); }
"#;

/// `leaf` edited: the bound changes, every caller of `leaf` is stale.
const CHAIN_V2: &str = r#"
    int knob = 8;
    int other_knob = 2;
    struct opt { char* name; int* var; };
    struct opt options[] = { { "knob", &knob }, { "other_knob", &other_knob } };
    int leaf(int x) { return x > 9; }
    int mid(int x) { return leaf(x); }
    int top(int x) { return mid(x); }
    void startup() {
        if (top(knob) == 0) { fprintf(stderr, "bad knob"); exit(1); }
        listen(0, knob);
    }
    void use_other() { sleep(other_knob); }
"#;

#[test]
fn leaf_edit_resummarizes_only_dependent_sccs() {
    let mut ws = Workspace::new("Test", Dialect::KeyValue);
    ws.add_module("main.c", CHAIN_V1, ANN).unwrap();
    let cold = ws.reanalyze();
    assert_eq!(cold.passes.summary_runs, 5, "cold run summarizes all five");
    assert_eq!(cold.passes.summary_cache_hits, 0);

    let diff = ws.update_module("main.c", CHAIN_V2).unwrap();
    assert_eq!(diff.changed, vec!["leaf".to_string()]);
    let warm = ws.reanalyze();
    assert_eq!(
        warm.passes.summary_runs, 4,
        "leaf, mid, top and startup re-summarized"
    );
    assert_eq!(
        warm.passes.summary_cache_hits, 1,
        "use_other's component reused"
    );
    assert_eq!(warm.passes.taint_runs, 1, "`knob` slice crosses the edit");
    assert_eq!(warm.passes.taint_cache_hits, 1, "`other_knob` slice reused");
    assert_eq!(warm.params_reinferred, 1);

    // Scoped warm work still lands on the from-scratch database.
    let mut fresh = Workspace::new("Test", Dialect::KeyValue);
    fresh.add_module("main.c", CHAIN_V2, ANN).unwrap();
    fresh.reanalyze();
    assert_eq!(ws.db().save_to_string(), fresh.db().save_to_string());
}

/// A self-recursive helper: its SCC is cyclic, so the summary comes out
/// of the bounded-widening fixpoint.
const REC_V1: &str = r#"
    int depth = 3;
    struct opt { char* name; int* var; };
    struct opt options[] = { { "depth", &depth } };
    int shrink(int x) {
        if (x > 64) { return shrink(x - 1); }
        return x > 0;
    }
    void startup() {
        if (shrink(depth) == 0) { fprintf(stderr, "bad depth"); exit(1); }
        listen(0, depth);
    }
"#;

/// The recursion threshold changes; the cyclic SCC must refixpoint.
const REC_V2: &str = r#"
    int depth = 3;
    struct opt { char* name; int* var; };
    struct opt options[] = { { "depth", &depth } };
    int shrink(int x) {
        if (x > 32) { return shrink(x - 1); }
        return x > 0;
    }
    void startup() {
        if (shrink(depth) == 0) { fprintf(stderr, "bad depth"); exit(1); }
        listen(0, depth);
    }
"#;

#[test]
fn recursive_helper_edit_converges_to_from_scratch_db() {
    let mut ws = Workspace::new("Test", Dialect::KeyValue);
    ws.add_module("main.c", REC_V1, ANN).unwrap();
    ws.reanalyze();

    let diff = ws.update_module("main.c", REC_V2).unwrap();
    assert_eq!(diff.changed, vec!["shrink".to_string()]);
    let warm = ws.reanalyze();
    assert_eq!(
        warm.passes.summary_runs, 2,
        "the cyclic SCC and its caller re-ran"
    );

    let mut fresh = Workspace::new("Test", Dialect::KeyValue);
    fresh.add_module("main.c", REC_V2, ANN).unwrap();
    fresh.reanalyze();
    assert_eq!(
        ws.db().save_to_string(),
        fresh.db().save_to_string(),
        "incremental fixpoint equals the from-scratch result"
    );
}
