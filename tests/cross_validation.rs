//! Checker-vs-injection cross-validation (ROADMAP item).
//!
//! The injection campaign (§3.1) tells us how the *system* reacts to each
//! generated misconfiguration (Table 5's reaction classes); the static
//! checker tells us whether the same misconfiguration would have been
//! caught *before deployment*. Crossing the two quantifies how much of
//! the injection campaign the proactive checker obsoletes: every
//! vulnerability row the checker flags is a crash/hang/silent-violation a
//! user never gets blamed for.
//!
//! The third axis is `spex-react`: its *static* reaction prediction
//! (SPEX-V001..V004) claims to know how the system will react without
//! running a single injection. Each campaign outcome is replayed against
//! the prediction for its parameter; predictions must be compatible with
//! the observed reaction for a large majority of parameters on every
//! catalog system.
//!
//! The summary tables are asserted byte-for-byte — the campaign, the
//! generation rules and the checker are all deterministic, so any drift
//! in either side must be a conscious change.

use spex::check::{CheckSession, ConstraintDb, StaticEnv};
use spex::core::{Annotation, Spex};
use spex::inject::{genrule, standard_rules, InjectionCampaign, Misconfig, Reaction, TestTarget};
use spex::react::{classify_analysis, ReactionClass};
use spex::systems::BuiltSystem;
use std::collections::BTreeMap;

/// The injection target for a built system (mirrors the evaluation
/// driver's harness wiring: port 80 occupied, template world on disk).
fn make_target(built: &BuiltSystem) -> TestTarget<'_> {
    let world_files = built.gen.world_files.clone();
    let world_dirs = built.gen.world_dirs.clone();
    TestTarget {
        name: built.spec.name.to_string(),
        module: &built.module,
        dialect: built.gen.dialect,
        template_conf: built.gen.template_conf.clone(),
        config_entry: "handle_config".into(),
        startup: "startup".into(),
        tests: built.gen.tests.clone(),
        world: Box::new(move || {
            let mut w = spex::vm::World::default();
            w.occupy_port(80);
            for (f, c) in &world_files {
                w.add_file(f, c);
            }
            for d in &world_dirs {
                w.add_dir(d);
            }
            w
        }),
        param_globals: built.gen.param_globals.clone(),
    }
}

/// The checker-side environment mirroring the same modelled world.
fn make_env(built: &BuiltSystem) -> StaticEnv {
    let mut env = StaticEnv::new();
    env.occupy_port(80);
    for (f, _) in &built.gen.world_files {
        env.add_file(f);
    }
    for d in &built.gen.world_dirs {
        env.add_dir(d);
    }
    for u in ["root", "nobody", "daemon"] {
        env.add_user(u);
    }
    for g in ["root", "daemon"] {
        env.add_group(g);
    }
    env.add_host("localhost");
    env
}

/// Applies one generated misconfiguration to the template config.
fn corrupt(built: &BuiltSystem, m: &Misconfig) -> String {
    let mut conf = spex::conf::ConfFile::parse(&built.gen.template_conf, built.gen.dialect);
    conf.set(&m.param, &m.value);
    for (p, v) in &m.also_set {
        conf.set(p, v);
    }
    conf.serialize()
}

/// Table 5's reaction-class label, extended with the two non-vulnerable
/// outcomes.
fn class_of(reaction: &Reaction) -> &'static str {
    reaction.column().unwrap_or_else(|| match reaction {
        Reaction::GoodReaction => "good-reaction",
        Reaction::Benign => "benign",
        _ => unreachable!("vulnerabilities have a column"),
    })
}

/// Whether a static reaction prediction is compatible with one observed
/// injection outcome.
///
/// The mapping is deliberately forgiving in one direction: a predicted
/// vulnerability class is compatible with any observed reaction it could
/// *manifest* as (a late detection may crash, hang, or terminate the
/// process; an unchecked value may be silently wrong or functionally
/// fail), and `Benign` is compatible with everything — many injected
/// values happen to be legal, so the reaction path never runs. What a
/// prediction is **not** allowed to do is invert the check verdict:
/// `CheckedWithMessage` is incompatible with every silent outcome, and
/// the silent classes are incompatible with `GoodReaction`.
fn compatible(pred: ReactionClass, r: &Reaction) -> bool {
    use Reaction::*;
    match pred {
        ReactionClass::CheckedWithMessage => {
            matches!(r, GoodReaction | Benign | EarlyTermination)
        }
        ReactionClass::SilentFallback => matches!(r, SilentViolation | Benign),
        ReactionClass::LateDetection => matches!(
            r,
            Crash(_) | Hang | EarlyTermination | FunctionalFailure | Benign
        ),
        ReactionClass::Unchecked => matches!(
            r,
            SilentIgnorance | SilentViolation | FunctionalFailure | Benign
        ),
    }
}

/// Renders the cross-validation table: one row per reaction class, the
/// checker verdict split into flagged (caught before deployment) and
/// missed.
fn render_table(rows: &BTreeMap<&'static str, (usize, usize)>) -> String {
    let mut out = String::from("reaction class       flagged  missed\n");
    let (mut tf, mut tm) = (0, 0);
    for (class, (flagged, missed)) in rows {
        out.push_str(&format!("{class:<20} {flagged:>7} {missed:>7}\n"));
        tf += flagged;
        tm += missed;
    }
    out.push_str(&format!("{:<20} {tf:>7} {tm:>7}\n", "total"));
    out
}

/// Runs the full cross-validation for one catalog system: injection
/// campaign over a deterministic misconfiguration sample, checker verdict
/// per outcome (snapshot table + zero-missed-vulnerability invariant),
/// and static reaction-prediction agreement per parameter.
fn cross_validate(system: &str, expected_table: &str) {
    let spec = spex::systems::system_by_name(system).unwrap();
    let built = BuiltSystem::build(spec);
    let anns = Annotation::parse(&built.gen.annotations).expect("annotations parse");
    let analysis = Spex::analyze(built.module.clone(), &anns);

    // Static side A: the reaction prediction per parameter, computed from
    // the IR alone — no injection involved.
    let predictions: BTreeMap<String, ReactionClass> = classify_analysis(&analysis)
        .into_iter()
        .map(|f| (f.param.clone(), f.class))
        .collect();

    // Static side B: the deployment-time checker over the persisted
    // constraint database.
    let mut db = ConstraintDb::from_analysis(built.spec.name, built.gen.dialect, &analysis);
    db.note_params(built.spec.params.iter().map(|p| p.name.as_str()));
    let db = ConstraintDb::load_from_str(&db.save_to_string()).expect("db round-trips");
    let env = make_env(&built);
    let session = CheckSession::new(&db).with_env(&env);

    // A deterministic sample of the generated misconfigurations (the
    // injection campaign dominates the runtime; the sample covers every
    // rule family).
    let constraints: Vec<_> = db
        .params
        .iter()
        .flat_map(|p| p.constraints.iter().cloned())
        .collect();
    let misconfigs = genrule::generate_all(&standard_rules(), &constraints);
    let step = (misconfigs.len() / 120).max(1);
    let sample: Vec<Misconfig> = misconfigs.iter().step_by(step).cloned().collect();
    assert!(sample.len() >= 40, "sample too small: {}", sample.len());

    // Injection side: how the system reacts to each misconfiguration.
    let campaign = InjectionCampaign::new(make_target(&built));
    let outcomes = campaign.run(&sample);
    assert_eq!(outcomes.len(), sample.len());

    // Checker side: would the same misconfiguration have been caught
    // before deployment? Cross the verdicts per reaction class, and
    // gather the observed reactions per parameter for the prediction
    // check below.
    let mut rows: BTreeMap<&'static str, (usize, usize)> = BTreeMap::new();
    let mut per_param: BTreeMap<&str, Vec<&Reaction>> = BTreeMap::new();
    for outcome in &outcomes {
        let flagged = !session
            .check_text(&corrupt(&built, &outcome.misconfig))
            .is_empty();
        let row = rows.entry(class_of(&outcome.reaction)).or_insert((0, 0));
        if flagged {
            row.0 += 1;
        } else {
            row.1 += 1;
        }
        per_param
            .entry(outcome.misconfig.param.as_str())
            .or_default()
            .push(&outcome.reaction);
    }
    let table = render_table(&rows);

    // The campaign and the checker are deterministic: the table is a
    // stable artifact (update it consciously when rules change).
    assert_eq!(
        table, expected_table,
        "{system}: cross-validation table drifted:\n{table}"
    );

    // Structural invariants behind the snapshot: every *vulnerability*
    // (a reaction a user would be blamed for) is caught by the checker —
    // the static check obsoletes the entire bad-reaction surface of this
    // campaign sample.
    let vulnerable: usize = rows
        .iter()
        .filter(|(class, _)| !matches!(**class, "good-reaction" | "benign"))
        .map(|(_, (f, m))| f + m)
        .sum();
    let vulnerable_missed: usize = rows
        .iter()
        .filter(|(class, _)| !matches!(**class, "good-reaction" | "benign"))
        .map(|(_, (_, m))| m)
        .sum();
    assert!(
        vulnerable > 0,
        "{system}: the campaign must expose vulnerabilities"
    );
    assert_eq!(
        vulnerable_missed, 0,
        "{system}: a vulnerability the checker misses is exactly the paper's blamed user:\n{table}"
    );

    // Reaction-prediction side: for every injected parameter the static
    // classifier must have produced a prediction, and for >= 80% of the
    // parameters the prediction must be compatible with the *majority* of
    // observed reactions (one parameter sees several injected values, and
    // a benign value exercises no reaction path at all).
    let mut agree = 0usize;
    let mut disagreements = Vec::new();
    for (param, reactions) in &per_param {
        let pred = *predictions
            .get(*param)
            .unwrap_or_else(|| panic!("{system}: no static prediction for `{param}`"));
        let ok = reactions.iter().filter(|r| compatible(pred, r)).count();
        if ok * 2 >= reactions.len() {
            agree += 1;
        } else {
            let obs: Vec<&str> = reactions.iter().map(|r| class_of(r)).collect();
            disagreements.push(format!("  {param}: predicted {pred}, observed {obs:?}"));
        }
    }
    let total = per_param.len();
    assert!(
        agree * 5 >= total * 4,
        "{system}: static reaction prediction agrees on only {agree}/{total} parameters:\n{}",
        disagreements.join("\n")
    );
}

#[test]
fn openldap_cross_validates_against_injection_reactions() {
    cross_validate(
        "OpenLDAP",
        "\
reaction class       flagged  missed
benign                    57       0
crash-hang                13       0
early-termination          4       0
functional-failure        10       0
good-reaction             32       0
silent-violation          41       0
total                    157       0
",
    );
}

#[test]
fn apache_cross_validates_against_injection_reactions() {
    cross_validate(
        "Apache",
        "\
reaction class       flagged  missed
benign                    32       0
crash-hang                10       0
early-termination         11       0
functional-failure        18       0
good-reaction             36       0
silent-violation          47       0
total                    154       0
",
    );
}

#[test]
fn vsftp_cross_validates_against_injection_reactions() {
    cross_validate(
        "VSFTP",
        "\
reaction class       flagged  missed
benign                    45       0
crash-hang                 8       0
early-termination         12       0
functional-failure        14       0
good-reaction             30       0
silent-ignorance          30       0
silent-violation          23       0
total                    162       0
",
    );
}
