//! Integration tests for the incremental `Workspace` API: scoped
//! re-inference equivalence, `v1 → v2` database lifecycle, sharded merge,
//! and streaming batch checking.

use spex::check::ConstraintDb;
use spex::conf::Dialect;
use spex::Workspace;

const ANN: &str = "{ @STRUCT = options\n @PAR = [opt, 1]\n @VAR = [opt, 2] }";

/// Two parameters, each used by its own function, so a change to one
/// function dirties exactly one parameter's slice.
const BASE: &str = r#"
    int threads = 4;
    int nap = 30;
    struct opt { char* name; int* var; };
    struct opt options[] = { { "threads", &threads }, { "nap", &nap } };
    void startup() {
        if (threads < 1) { exit(1); }
        if (threads > 16) { exit(1); }
    }
    void napper() { sleep(nap); }
"#;

/// `napper` edited: `nap` gains an upper bound; `startup` is untouched.
const EDITED: &str = r#"
    int threads = 4;
    int nap = 30;
    struct opt { char* name; int* var; };
    struct opt options[] = { { "threads", &threads }, { "nap", &nap } };
    void startup() {
        if (threads < 1) { exit(1); }
        if (threads > 16) { exit(1); }
    }
    void napper() {
        if (nap > 600) { exit(1); }
        sleep(nap);
    }
"#;

/// `startup` edited relative to [`BASE`] (lower bound 1 → 2); everything
/// else — including source layout, so constraint spans match — is
/// unchanged. Used by the multi-module ordering test.
const MAIN_V2: &str = r#"
    int threads = 4;
    int nap = 30;
    struct opt { char* name; int* var; };
    struct opt options[] = { { "threads", &threads }, { "nap", &nap } };
    void startup() {
        if (threads < 2) { exit(1); }
        if (threads > 16) { exit(1); }
    }
    void napper() { sleep(nap); }
"#;

/// A second module constraining the same `threads` parameter.
const NET: &str = r#"
    int threads = 4;
    struct opt { char* name; int* var; };
    struct opt options[] = { { "threads", &threads } };
    void serve() { if (threads > 64) { exit(1); } }
"#;

fn workspace_over(source: &str) -> Workspace {
    let mut ws = Workspace::new("Test", Dialect::KeyValue);
    ws.add_module("main.c", source, ANN).unwrap();
    ws
}

/// The tentpole acceptance criterion: after editing one function,
/// `reanalyze` re-runs the per-parameter inference passes only for the
/// dirty function's parameter (asserted via pass-invocation counters), and
/// the incrementally updated database equals a from-scratch full analysis
/// of the edited source.
#[test]
fn incremental_reanalysis_is_scoped_and_equivalent_to_full() {
    let mut ws = workspace_over(BASE);
    let full = ws.reanalyze();
    assert_eq!(full.params_reinferred, 2);
    assert_eq!(full.passes.basic_type, 2, "full run infers every param");
    assert_eq!(full.passes.range, 2);

    let diff = ws.update_module("main.c", EDITED).unwrap();
    assert_eq!(diff.changed, vec!["napper".to_string()]);
    assert_eq!(ws.dirty_modules(), vec!["main.c"]);

    let incr = ws.reanalyze();
    assert_eq!(incr.params_reinferred, 1, "only `nap` is dirty");
    assert_eq!(incr.passes.basic_type, 1, "one param → one pass invocation");
    assert_eq!(incr.passes.semantic_type, 1);
    assert_eq!(incr.passes.range, 1);

    // The incremental database is byte-for-byte the full re-analysis.
    let mut fresh = workspace_over(EDITED);
    fresh.reanalyze();
    assert_eq!(ws.db(), fresh.db());
    assert_eq!(ws.db().save_to_string(), fresh.db().save_to_string());

    // And the new constraint is actually live in the checker.
    assert!(ws.check_text("nap = 30\n").is_empty());
    assert!(!ws.check_text("nap = 9999\n").is_empty());
}

/// A control dependency can be *inherited*: the guard lives in a caller
/// the dependent parameter's own slice never touches. Editing that caller
/// must still re-infer the dependent, or the db keeps an obsolete
/// dependency a full re-analysis would not produce.
#[test]
fn editing_a_caller_reinfers_inherited_control_deps() {
    const GUARDED: &str = r#"
        int fsync_on = 1;
        int commit_siblings = 5;
        struct opt { char* name; int* var; };
        struct opt options[] = {
            { "fsync", &fsync_on }, { "commit_siblings", &commit_siblings }
        };
        void flush() {
            if (commit_siblings > 0) { sleep(commit_siblings); }
        }
        void main_loop() {
            if (fsync_on) { flush(); }
        }
    "#;
    // `main_loop` edited: the guard is gone; `flush` is untouched.
    const UNGUARDED: &str = r#"
        int fsync_on = 1;
        int commit_siblings = 5;
        struct opt { char* name; int* var; };
        struct opt options[] = {
            { "fsync", &fsync_on }, { "commit_siblings", &commit_siblings }
        };
        void flush() {
            if (commit_siblings > 0) { sleep(commit_siblings); }
        }
        void main_loop() {
            flush();
        }
    "#;
    let dep_warnings = |ws: &Workspace| {
        ws.check_text("commit_siblings = 5\nfsync = 0\n")
            .into_iter()
            .filter(|d| d.category() == "control-dep")
            .count()
    };
    let mut ws = workspace_over(GUARDED);
    ws.reanalyze();
    assert_eq!(
        dep_warnings(&ws),
        1,
        "guarded build warns about the disabled controller"
    );

    let diff = ws.update_module("main.c", UNGUARDED).unwrap();
    assert_eq!(diff.changed, vec!["main_loop".to_string()]);
    ws.reanalyze();

    let mut fresh = workspace_over(UNGUARDED);
    fresh.reanalyze();
    assert_eq!(
        ws.db(),
        fresh.db(),
        "incremental db must drop the inherited dependency"
    );
    assert_eq!(dep_warnings(&ws), 0);
}

/// The dual case: the edit *removes the call* to the function the
/// dependent lives in. The old call graph reached it, the new one does
/// not — the closure over previous call edges must still re-infer it.
#[test]
fn removing_a_call_edge_reinfers_formerly_inherited_deps() {
    const GUARDED: &str = r#"
        int fsync_on = 1;
        int commit_siblings = 5;
        struct opt { char* name; int* var; };
        struct opt options[] = {
            { "fsync", &fsync_on }, { "commit_siblings", &commit_siblings }
        };
        void flush() {
            if (commit_siblings > 0) { sleep(commit_siblings); }
        }
        void main_loop() {
            if (fsync_on) { flush(); }
        }
    "#;
    // `main_loop` edited: it no longer calls `flush` at all.
    const CALL_REMOVED: &str = r#"
        int fsync_on = 1;
        int commit_siblings = 5;
        struct opt { char* name; int* var; };
        struct opt options[] = {
            { "fsync", &fsync_on }, { "commit_siblings", &commit_siblings }
        };
        void flush() {
            if (commit_siblings > 0) { sleep(commit_siblings); }
        }
        void main_loop() {
            if (fsync_on) { exit(0); }
        }
    "#;
    let mut ws = workspace_over(GUARDED);
    ws.reanalyze();

    let diff = ws.update_module("main.c", CALL_REMOVED).unwrap();
    assert_eq!(diff.changed, vec!["main_loop".to_string()]);
    ws.reanalyze();

    let mut fresh = workspace_over(CALL_REMOVED);
    fresh.reanalyze();
    assert_eq!(
        ws.db(),
        fresh.db(),
        "a removed call edge must still re-infer the formerly reached callee"
    );
    assert!(!ws
        .check_text("commit_siblings = 5\nfsync = 0\n")
        .iter()
        .any(|d| d.category() == "control-dep"));
}

/// Editing nothing (or only comments) is free.
#[test]
fn no_op_edits_reinfer_nothing() {
    let mut ws = workspace_over(BASE);
    ws.reanalyze();
    let diff = ws
        .update_module("main.c", &format!("// audit note\n{BASE}"))
        .unwrap();
    assert!(diff.is_empty());
    let r = ws.reanalyze();
    assert_eq!(r.modules_analyzed, 0);
    assert_eq!(r.passes.total(), 0);
}

/// Renders a database in the legacy v1 format, as a pre-workspace
/// deployment would have written it.
fn as_v1(db: &ConstraintDb) -> String {
    let mut out = String::new();
    for (i, line) in db.save_to_string().lines().enumerate() {
        if i == 0 {
            out.push_str("spex-constraint-db v1\n");
        } else if line.starts_with("c ") {
            out.push_str(line.rsplit_once(" | ").unwrap().0);
            out.push('\n');
        } else {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// The db-lifecycle acceptance criterion: a `v1` database loads, migrates
/// and merges into a `v2` database losslessly.
#[test]
fn v1_db_loads_migrates_and_merges_losslessly() {
    let mut ws = workspace_over(BASE);
    ws.reanalyze();
    let v1_text = as_v1(ws.db());
    assert_eq!(ConstraintDb::detect_version(&v1_text), Some(1));

    // Load: the v1 payload arrives intact, with empty provenance (the
    // file carries the canonical save order, so compare against that).
    let migrated = ConstraintDb::load_from_str(&v1_text).expect("v1 loads");
    assert_eq!(migrated.constraint_count(), ws.db().constraint_count());
    let mut canonical = ws.db().clone();
    canonical.canonicalize();
    for (theirs, ours) in migrated.params.iter().zip(canonical.params.iter()) {
        assert_eq!(theirs.name, ours.name);
        assert_eq!(theirs.constraints, ours.constraints);
        assert!(theirs.provenance.iter().all(String::is_empty));
    }

    // Merge into a v2 database: everything lands, nothing conflicts.
    let mut v2 = ConstraintDb::new("Test", Dialect::KeyValue);
    let report = v2.merge(&migrated).expect("same system merges");
    assert_eq!(report.added, migrated.constraint_count());
    assert!(report.conflicts.is_empty());
    assert_eq!(v2.constraint_count(), ws.db().constraint_count());

    // Re-saving writes the current format, round-trippable.
    let rewritten = v2.save_to_string();
    assert_eq!(ConstraintDb::detect_version(&rewritten), Some(2));
    assert_eq!(ConstraintDb::load_from_str(&rewritten).unwrap(), v2);

    // A migrated db also seeds a workspace directly (the upgrade path).
    let ws2 = Workspace::from_db(migrated);
    assert!(!ws2.check_text("threads = 64\n").is_empty());
}

/// Resuming from a persisted database and re-analyzing a module must
/// garbage-collect constraints for parameters the module no longer maps —
/// a restart must behave like a continuous session.
#[test]
fn from_db_resume_garbage_collects_unmapped_params() {
    // Session 1: `old_opt` is mapped and constrained; persist the db.
    let mut ws = Workspace::new("Test", Dialect::KeyValue);
    ws.add_module(
        "main.c",
        r#"
        int old_opt = 4;
        struct opt { char* name; int* var; };
        struct opt options[] = { { "old_opt", &old_opt } };
        void startup() { if (old_opt > 16) { exit(1); } }
        "#,
        ANN,
    )
    .unwrap();
    ws.reanalyze();
    let persisted = ConstraintDb::load_from_str(&ws.db().save_to_string()).unwrap();

    // Session 2: resume from the db; main.c no longer maps old_opt.
    let mut resumed = Workspace::from_db(persisted);
    resumed.add_module("main.c", BASE, ANN).unwrap();
    resumed.reanalyze();
    assert!(
        resumed.db().param("old_opt").is_none(),
        "stale constraints must not survive the resumed re-analysis"
    );
    let ds = resumed.check_text("old_opt = 64\n");
    assert_eq!(ds.len(), 1);
    assert_eq!(ds[0].category(), "unknown-key");

    // Matches a continuous session over the same final source (orders
    // may differ between a resumed and a continuous history; the
    // canonical serialization may not).
    let mut fresh = workspace_over(BASE);
    fresh.reanalyze();
    assert_eq!(resumed.db().save_to_string(), fresh.db().save_to_string());
}

/// Removing a module right after resuming from a persisted database (no
/// intervening reanalyze) must still purge its provenance-tagged
/// constraints.
#[test]
fn from_db_then_remove_module_purges_provenance() {
    let mut ws = workspace_over(BASE);
    ws.reanalyze();
    let persisted = ConstraintDb::load_from_str(&ws.db().save_to_string()).unwrap();

    let mut resumed = Workspace::from_db(persisted);
    resumed.add_module("main.c", BASE, ANN).unwrap();
    resumed.remove_module("main.c").unwrap();
    assert_eq!(resumed.db().constraint_count(), 0);
    assert!(resumed.db().param("threads").is_none());
}

/// Sharded analysis: two workspaces analyzing different modules of the
/// same system combine via `merge`, keeping per-shard provenance.
#[test]
fn sharded_databases_merge_with_provenance() {
    let mut shard_a = Workspace::new("Test", Dialect::KeyValue);
    shard_a
        .add_module(
            "net.c",
            r#"
            int port = 8080;
            struct opt { char* name; int* var; };
            struct opt options[] = { { "port", &port } };
            void serve() { listen(0, port); }
            "#,
            ANN,
        )
        .unwrap();
    shard_a.reanalyze();

    let mut shard_b = workspace_over(BASE);
    shard_b.reanalyze();

    let mut combined = shard_a.into_db();
    let report = combined.merge(shard_b.db()).unwrap();
    assert_eq!(report.params_added, 2);
    assert!(combined.param("port").is_some());
    let threads = combined.param("threads").unwrap();
    assert!(threads.provenance.iter().all(|m| m == "main.c"));
    assert!(combined
        .param("port")
        .unwrap()
        .provenance
        .iter()
        .all(|m| m == "net.c"));
}

/// Streaming validation: a config tree checks with deterministic order
/// and per-file reports, straight off the workspace.
#[test]
fn check_paths_streams_a_config_tree() {
    let mut ws = workspace_over(BASE);
    ws.reanalyze();

    let root = std::env::temp_dir().join("spex_ws_check_paths");
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(root.join("hosts")).unwrap();
    std::fs::write(root.join("base.conf"), "threads = 8\nnap = 30\n").unwrap();
    std::fs::write(root.join("hosts/h1.conf"), "threads = 64\n").unwrap();
    std::fs::write(root.join("hosts/h2.conf"), "threds = 8\n").unwrap();

    let report = ws.check_paths(std::slice::from_ref(&root)).unwrap();
    assert_eq!(report.stats.files, 3);
    assert_eq!(report.stats.clean_files, 1);
    assert_eq!(report.stats.flagged_files, 2);
    assert!(report.files[0].file.ends_with("base.conf"));
    assert!(report.files[0].is_clean());
    assert!(report.files[1].file.ends_with("h1.conf"));
    assert!(report.files[2].file.ends_with("h2.conf"));
    assert_eq!(report.files[2].diagnostics[0].category(), "unknown-key");
    assert_eq!(report.exit_code(), 1, "a flagged tree gates the deploy");
    std::fs::remove_dir_all(&root).ok();
}

/// The borrowed-engine acceptance criterion: the cached session performs
/// **zero** `ConstraintDb` clones across any number of `check_text`/
/// `check_paths` calls, and the parameter index is rebuilt only when the
/// database actually changes.
#[test]
fn cached_checking_performs_zero_db_clones() {
    let mut ws = workspace_over(BASE);
    ws.reanalyze();

    let root = std::env::temp_dir().join("spex_ws_zero_clone");
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    for i in 0..8 {
        std::fs::write(
            root.join(format!("h{i}.conf")),
            if i % 2 == 0 {
                "threads = 8\n"
            } else {
                "threads = 99\n"
            },
        )
        .unwrap();
    }

    let clones_before = ws.db().clone_count();
    assert_eq!(ws.session_rebuilds(), 0, "nothing checked yet");

    for _ in 0..3 {
        let report = ws.check_paths(std::slice::from_ref(&root)).unwrap();
        assert_eq!(report.stats.files, 8);
        assert_eq!(report.stats.flagged_files, 4);
    }
    for _ in 0..20 {
        assert_eq!(ws.check_text("threads = 99\n").len(), 1);
    }
    ws.check_texts(&[("a".to_string(), "threads = 1\n".to_string())]);

    assert_eq!(
        ws.db().clone_count(),
        clones_before,
        "checking must never copy the database"
    );
    assert_eq!(
        ws.session_rebuilds(),
        1,
        "one index build serves every check of one db generation"
    );

    // A real change invalidates the cache: exactly one more rebuild, and
    // the fresh constraint is live.
    ws.update_module("main.c", EDITED).unwrap();
    ws.reanalyze();
    assert!(!ws.check_text("nap = 9999\n").is_empty());
    ws.check_text("nap = 30\n");
    assert_eq!(ws.session_rebuilds(), 2, "one rebuild per db generation");
    assert_eq!(
        ws.db().clone_count(),
        clones_before,
        "reanalysis does not clone the checking db either"
    );
    std::fs::remove_dir_all(&root).ok();
}

/// The pass-cache acceptance criterion, part 1: `reanalyze` — first full
/// run, warm incremental runs and no-op runs alike — never deep-clones a
/// stored `Module` (the analysis borrows it), asserted via the lineage
/// clone counter mirroring PR 3's `ConstraintDb::clone_count`.
#[test]
fn reanalyze_performs_zero_module_deep_clones() {
    let mut ws = workspace_over(BASE);
    assert_eq!(ws.module_clones(), 0);
    ws.reanalyze();
    assert_eq!(ws.module_clones(), 0, "the full analysis borrows");

    ws.update_module("main.c", EDITED).unwrap();
    ws.reanalyze();
    assert_eq!(ws.module_clones(), 0, "the incremental analysis borrows");

    ws.update_module("main.c", &format!("// note\n{EDITED}"))
        .unwrap();
    ws.reanalyze();
    assert_eq!(ws.module_clones(), 0, "a no-op reanalyze touches nothing");
}

/// The pass-cache acceptance criterion, part 2: after an edit that adds an
/// isolated function (same fingerprints for everything else), the warm
/// `reanalyze` serves every cacheable artifact — the mapping extraction
/// and every parameter's taint slice — from the fingerprint-keyed cache:
/// 100% hits, zero recomputations, zero inference passes.
#[test]
fn no_op_edit_yields_full_cache_hits() {
    let mut ws = workspace_over(BASE);
    let cold = ws.reanalyze();
    assert_eq!(cold.passes.mapping_extractions, 1, "cold run extracts");
    assert_eq!(cold.passes.taint_runs, 2, "cold run slices both params");
    assert_eq!(cold.passes.summary_runs, 2, "cold run summarizes both fns");
    assert_eq!(cold.passes.mapping_cache_hits, 0);
    assert_eq!(cold.passes.taint_cache_hits, 0);
    assert_eq!(cold.passes.summary_cache_hits, 0);

    // An added function no parameter's flow touches: everything cacheable
    // must hit.
    let probed = format!("{BASE}\nvoid probe() {{ exit(1); }}\n");
    let diff = ws.update_module("main.c", &probed).unwrap();
    assert_eq!(diff.added, vec!["probe".to_string()]);
    let warm = ws.reanalyze();
    assert_eq!(warm.passes.mapping_cache_hits, 1, "mapping reused");
    assert_eq!(warm.passes.taint_cache_hits, 2, "both slices reused");
    assert_eq!(warm.passes.mapping_extractions, 0);
    assert_eq!(warm.passes.taint_runs, 0);
    assert_eq!(warm.passes.summary_runs, 1, "only the added fn summarized");
    assert_eq!(warm.passes.summary_cache_hits, 2, "old components reused");
    assert_eq!(warm.passes.cached_fraction(), Some(1.0), "100% cache hits");
    assert_eq!(warm.passes.total(), 0, "no inference pass re-ran");
    assert_eq!(warm.params_reinferred, 0);

    // A same-fingerprint (comment-only) edit does not even analyze.
    let diff = ws
        .update_module("main.c", &format!("// audit\n{probed}"))
        .unwrap();
    assert!(diff.is_empty());
    let noop = ws.reanalyze();
    assert_eq!(noop.modules_analyzed, 0);

    // The caches never went stale: the incremental database still equals
    // a from-scratch analysis of the final source.
    let mut fresh = workspace_over(&probed);
    fresh.reanalyze();
    assert_eq!(ws.db(), fresh.db());
}

/// A warm edit that touches one function recomputes only the slices the
/// edit can reach and reuses the rest, while still converging on the
/// from-scratch database.
#[test]
fn warm_edit_reuses_unaffected_slices() {
    let mut ws = workspace_over(BASE);
    ws.reanalyze();

    // `napper` edited: `nap`'s slice must be recomputed, `threads`'s
    // (disjoint functions, disjoint globals) must be reused.
    ws.update_module("main.c", EDITED).unwrap();
    let warm = ws.reanalyze();
    assert_eq!(warm.passes.taint_cache_hits, 1, "`threads` slice reused");
    assert_eq!(warm.passes.taint_runs, 1, "`nap` slice recomputed");
    assert_eq!(
        warm.passes.mapping_cache_hits, 1,
        "no mapping pattern touched"
    );
    assert_eq!(warm.params_reinferred, 1);

    let mut fresh = workspace_over(EDITED);
    fresh.reanalyze();
    assert_eq!(ws.db(), fresh.db());
    assert_eq!(ws.db().save_to_string(), fresh.db().save_to_string());
}

/// Mapping extraction is cached per annotation: a module mixing a
/// structure-based table with a comparison-based parser re-extracts only
/// the annotation the edit is relevant to, and serves the other from the
/// cache.
#[test]
fn editing_a_parser_reextracts_only_its_annotation() {
    const TWO_ANNS: &str = "{ @STRUCT = options\n @PAR = [opt, 1]\n @VAR = [opt, 2] }\n\
                            { @PARSER = handle_config\n @PAR = $name\n @VAR = $value }";
    const MIXED: &str = r#"
        int threads = 4;
        int nap = 30;
        struct opt { char* name; int* var; };
        struct opt options[] = { { "threads", &threads } };
        int handle_config(char* name, char* value) {
            if (strcmp(name, "nap") == 0) {
                nap = atoi(value);
                return 1;
            }
            return 0;
        }
        void startup() {
            if (threads < 1) { exit(1); }
            if (nap > 600) { exit(1); }
            sleep(nap);
        }
    "#;
    // `handle_config` edited (return code only): the comparison-based
    // mapping must be re-derived, the table-based one must not.
    const PARSER_EDITED: &str = r#"
        int threads = 4;
        int nap = 30;
        struct opt { char* name; int* var; };
        struct opt options[] = { { "threads", &threads } };
        int handle_config(char* name, char* value) {
            if (strcmp(name, "nap") == 0) {
                nap = atoi(value);
                return 2;
            }
            return 0;
        }
        void startup() {
            if (threads < 1) { exit(1); }
            if (nap > 600) { exit(1); }
            sleep(nap);
        }
    "#;
    let mut ws = Workspace::new("Test", Dialect::KeyValue);
    ws.add_module("main.c", MIXED, TWO_ANNS).unwrap();
    let cold = ws.reanalyze();
    assert_eq!(cold.passes.mapping_extractions, 2, "one per annotation");
    assert_eq!(cold.params_total, 2, "both conventions map a parameter");

    let diff = ws.update_module("main.c", PARSER_EDITED).unwrap();
    assert_eq!(diff.changed, vec!["handle_config".to_string()]);
    let warm = ws.reanalyze();
    assert_eq!(
        warm.passes.mapping_extractions, 1,
        "only the @PARSER annotation re-extracted"
    );
    assert_eq!(
        warm.passes.mapping_cache_hits, 1,
        "the @STRUCT annotation served from cache"
    );

    let mut fresh = Workspace::new("Test", Dialect::KeyValue);
    fresh.add_module("main.c", PARSER_EDITED, TWO_ANNS).unwrap();
    fresh.reanalyze();
    assert_eq!(ws.db().save_to_string(), fresh.db().save_to_string());
}

/// The cache's soundness edge: an *added* function can expand an existing
/// slice (here, by loading a parameter's backing global), so that slice
/// must be recomputed even though no previously touched function changed.
#[test]
fn warm_edit_opening_a_new_channel_recomputes_the_slice() {
    let mut ws = workspace_over(BASE);
    ws.reanalyze();
    assert!(
        ws.check_text("threads = 10\n").is_empty(),
        "10 ≤ 16 is fine"
    );

    // `extra` tightens the bound on `threads` from a brand-new function:
    // the old slice never touched `extra`, but the fresh one must.
    let extended = format!("{BASE}\nvoid extra() {{ if (threads > 8) {{ exit(1); }} }}\n");
    let diff = ws.update_module("main.c", &extended).unwrap();
    assert_eq!(diff.added, vec!["extra".to_string()]);
    let warm = ws.reanalyze();
    assert_eq!(
        warm.passes.taint_runs, 1,
        "`threads` slice must miss the cache (new load of its global)"
    );
    assert_eq!(warm.passes.taint_cache_hits, 1, "`nap` is unaffected");
    assert_eq!(warm.params_reinferred, 1);

    // The tightened range is live and equal to a from-scratch analysis.
    assert_eq!(ws.check_text("threads = 10\n").len(), 1);
    let mut fresh = workspace_over(&extended);
    fresh.reanalyze();
    assert_eq!(ws.db(), fresh.db());
    assert_eq!(ws.db().save_to_string(), fresh.db().save_to_string());
}

/// The symmetric soundness edge: an edit that *removes* a channel must
/// also invalidate the slice it fed. Here `wire` holds the only address
/// of `check_thr`, which `dispatch`'s indirect call reaches with the
/// tainted `threads`; emptying `wire` severs that edge, so the cached
/// (larger) slice — and the `> 8` bound it carried — must not be reused.
#[test]
fn warm_edit_removing_a_channel_recomputes_the_slice() {
    let wired = r#"
        int threads = 4;
        struct opt { char* name; int* var; };
        struct opt options[] = { { "threads", &threads } };
        void check_thr(int t) { if (t > 8) { exit(1); } }
        void wire() { fnptr p = check_thr; p(0); }
        void dispatch(fnptr f) { f(threads); }
    "#;
    let unwired = r#"
        int threads = 4;
        struct opt { char* name; int* var; };
        struct opt options[] = { { "threads", &threads } };
        void check_thr(int t) { if (t > 8) { exit(1); } }
        void wire() { }
        void dispatch(fnptr f) { f(threads); }
    "#;
    let mut ws = workspace_over(wired);
    ws.reanalyze();
    assert_eq!(
        ws.check_text("threads = 10\n").len(),
        1,
        "the wired bound flags 10 > 8"
    );

    // `wire` edited: the old form took `check_thr`'s address (an arity-1
    // indirect target), so `threads`'s slice must miss even though no
    // slice-touched function changed and the *new* `wire` is inert.
    let diff = ws.update_module("main.c", unwired).unwrap();
    assert_eq!(diff.changed, vec!["wire".to_string()]);
    let warm = ws.reanalyze();
    assert_eq!(
        warm.passes.taint_runs, 1,
        "`threads` slice must be recomputed after the channel was removed"
    );

    // The stale bound is gone and the database equals a from-scratch run.
    assert!(ws.check_text("threads = 10\n").is_empty());
    let mut fresh = workspace_over(unwired);
    fresh.reanalyze();
    assert_eq!(ws.db(), fresh.db());
    assert_eq!(ws.db().save_to_string(), fresh.db().save_to_string());
    assert_eq!(ws.module_clones(), 0);
}

/// The reaction-pass acceptance criterion: a warm `reanalyze` re-runs the
/// static reaction classifier only for dirty-slice parameters; everything
/// else is served from the per-module finding cache (and the cached
/// verdicts stay correct).
#[test]
fn warm_reanalyze_reclassifies_only_dirty_slices() {
    use spex::check::ReactionClass;

    let mut ws = workspace_over(BASE);
    let cold = ws.reanalyze();
    assert_eq!(cold.passes.react_runs, 2, "cold run classifies every param");
    assert_eq!(cold.passes.react_cache_hits, 0);

    // BASE: `threads` is exit-guarded, `nap` flows into `sleep` unchecked.
    let class_of = |ws: &Workspace, param: &str| {
        ws.reaction_findings()
            .iter()
            .find(|(_, f)| f.param == param)
            .map(|(_, f)| f.class)
            .unwrap()
    };
    assert_eq!(class_of(&ws, "threads"), ReactionClass::CheckedWithMessage);
    assert_eq!(class_of(&ws, "nap"), ReactionClass::LateDetection);
    let report = ws.reaction_report();
    assert_eq!(report.stats.errors, 1, "one late detection");
    assert!(report
        .files
        .iter()
        .flat_map(|f| &f.diagnostics)
        .any(|d| { d.param == "nap" && d.code.as_str() == "SPEX-V003" && d.origin.is_some() }));

    // `napper` edited: only `nap`'s slice is dirty, so only `nap` is
    // reclassified; `threads` keeps its cached verdict.
    ws.update_module("main.c", EDITED).unwrap();
    let warm = ws.reanalyze();
    assert_eq!(warm.passes.react_runs, 1, "`nap` reclassified");
    assert_eq!(warm.passes.react_cache_hits, 1, "`threads` verdict reused");
    assert_eq!(
        class_of(&ws, "nap"),
        ReactionClass::CheckedWithMessage,
        "the new dominating guard flips the verdict"
    );
    assert_eq!(class_of(&ws, "threads"), ReactionClass::CheckedWithMessage);
    assert_eq!(ws.reaction_report().stats.errors, 0);

    // An isolated added function dirties no slice: every verdict cached.
    ws.update_module(
        "main.c",
        &format!("{EDITED}\nvoid probe() {{ exit(1); }}\n"),
    )
    .unwrap();
    let warm = ws.reanalyze();
    assert_eq!(warm.passes.react_runs, 0, "no slice dirty, no classify");
    assert_eq!(warm.passes.react_cache_hits, 2, "both verdicts reused");
}

/// `merge_db` folds a shard into the owned database and invalidates the
/// cached session, so merged constraints are immediately checkable.
#[test]
fn merge_db_invalidates_the_cached_session() {
    let mut ws = workspace_over(BASE);
    ws.reanalyze();
    assert!(ws.check_text("port = 0\n").len() == 1, "unknown key so far");
    assert_eq!(ws.session_rebuilds(), 1);

    let mut shard = Workspace::new("Test", Dialect::KeyValue);
    shard
        .add_module(
            "net.c",
            r#"
            int port = 8080;
            struct opt { char* name; int* var; };
            struct opt options[] = { { "port", &port } };
            void serve() { listen(0, port); }
            "#,
            ANN,
        )
        .unwrap();
    shard.reanalyze();

    let report = ws.merge_db(shard.db()).unwrap();
    assert!(report.params_added >= 1);
    // The merged `port` parameter is known (and semantically checked) now.
    let ds = ws.check_text("port = 0\n");
    assert!(ds.iter().all(|d| d.category() != "unknown-key"), "{ds:#?}");
    assert_eq!(ws.session_rebuilds(), 2, "merge invalidated the cache");
}

/// The multi-module ordering guarantee: an incrementally updated
/// workspace and a from-scratch one can hold the same constraints in
/// different in-memory orders (re-inferred constraints are appended at
/// the end of an entry), but their canonical serializations are
/// byte-identical — so fleet distribution and content-addressed caching
/// see one artifact.
#[test]
fn incremental_multi_module_db_serializes_byte_identical_to_fresh() {
    let build = |main: &str| {
        let mut ws = Workspace::new("Test", Dialect::KeyValue);
        ws.add_module("main.c", main, ANN).unwrap();
        ws.add_module("net.c", NET, ANN).unwrap();
        ws.reanalyze();
        ws
    };

    // Incremental history: analyze, then edit main.c (the module the
    // from-scratch order lists *first*). Its re-inferred constraints are
    // appended at the end of the shared `threads` entry, after net.c's.
    let mut incremental = build(BASE);
    incremental.update_module("main.c", MAIN_V2).unwrap();
    let r = incremental.reanalyze();
    assert!(r.params_reinferred >= 1);

    // From-scratch history over the same final sources.
    let fresh = build(MAIN_V2);

    let entry_order = |ws: &Workspace| ws.db().param("threads").unwrap().provenance.clone();
    assert_ne!(
        entry_order(&incremental),
        entry_order(&fresh),
        "the histories really interleave the entry differently in memory"
    );
    let a = incremental.db().save_to_string();
    let b = fresh.db().save_to_string();
    assert_eq!(a, b, "canonical save order is history-independent");

    // And the canonical bytes round-trip.
    let back = ConstraintDb::load_from_str(&a).unwrap();
    assert_eq!(back.save_to_string(), a);
}
