//! Determinism and zero-copy contracts of the parallel analysis path.
//!
//! The tentpole guarantee: fanning the inference passes across the worker
//! pool — at parameter granularity inside one module, at module
//! granularity across a workspace — must be invisible in the output.
//! Byte-identical persisted constraints, identical pass counters, at any
//! thread count. And the shared-function IR must make warmth free: a warm
//! reanalyze generation copies no function bodies at all.

use spex::check::Workspace;
use spex::conf::Dialect;
use spex::core::infer::PassCounts;
use spex::systems::fleet::{generate_fleet, FleetSpec};
use spex::systems::BuiltSystem;

/// Cold-analyzes one catalog system, applies a warm probe edit, and
/// returns the persisted database bytes plus pass counters of both
/// generations.
fn catalog_run(name: &str, threads: usize) -> (String, PassCounts, String, PassCounts) {
    let spec = spex::systems::system_by_name(name).unwrap();
    let built = BuiltSystem::build(spec);
    let mut ws = Workspace::new(name, built.gen.dialect).with_threads(threads);
    ws.add_module("gen.c", &built.gen.source, &built.gen.annotations)
        .unwrap();
    let cold = ws.reanalyze();
    let cold_db = ws.db().save_to_string();

    let edited = format!(
        "{}\nvoid spex_par_probe() {{ exit(1); }}\n",
        built.gen.source
    );
    ws.update_module("gen.c", &edited).unwrap();
    let warm = ws.reanalyze();
    (cold_db, cold.passes, ws.db().save_to_string(), warm.passes)
}

#[test]
fn catalog_analysis_is_byte_identical_across_thread_counts() {
    for name in ["OpenLDAP", "Apache"] {
        let baseline = catalog_run(name, 1);
        assert!(
            baseline.1.summary_runs > 0,
            "{name}: cold run must compute function summaries"
        );
        assert!(
            baseline.3.summary_cache_hits > 0,
            "{name}: warm probe edit must reuse clean SCC summaries"
        );
        for threads in [2, 8] {
            let run = catalog_run(name, threads);
            assert_eq!(
                run.0, baseline.0,
                "{name}: cold ConstraintDb differs at {threads} threads"
            );
            assert_eq!(
                run.1, baseline.1,
                "{name}: cold PassCounts differ at {threads} threads"
            );
            assert_eq!(
                run.2, baseline.2,
                "{name}: warm ConstraintDb differs at {threads} threads"
            );
            assert_eq!(
                run.3, baseline.3,
                "{name}: warm PassCounts differ at {threads} threads"
            );
        }
    }
}

/// Module-granularity fan-out: a workspace holding many small modules
/// (the fleet regime) persists the same bytes however its dirty modules
/// land on workers.
#[test]
fn fleet_workspace_is_byte_identical_across_thread_counts() {
    let spec = FleetSpec {
        modules: 12,
        configs_per_module: 1,
        seed: 0xf1ee7,
    };
    let fleet = generate_fleet(&spec);
    let run = |threads: usize| {
        let mut ws = Workspace::new("Fleet", Dialect::KeyValue).with_threads(threads);
        for m in &fleet {
            ws.add_module(&m.name, &m.source, &m.annotations).unwrap();
        }
        let report = ws.reanalyze();
        (ws.db().save_to_string(), report.passes, report.params_total)
    };
    let baseline = run(1);
    assert!(baseline.2 > 0, "the fleet must yield parameters");
    for threads in [2, 8] {
        assert_eq!(run(threads), baseline, "at {threads} threads");
    }
}

/// The zero-copy contract end to end: cold analysis, warm edits and
/// re-analysis at several thread counts never copy a function body or
/// deep-clone a module.
#[test]
fn no_function_bodies_are_copied_at_any_thread_count() {
    let spec = spex::systems::system_by_name("VSFTP").unwrap();
    let built = BuiltSystem::build(spec);
    for threads in [1, 4] {
        let mut ws = Workspace::new("VSFTP", built.gen.dialect).with_threads(threads);
        ws.add_module("gen.c", &built.gen.source, &built.gen.annotations)
            .unwrap();
        ws.reanalyze();
        for round in 0..2 {
            let edited = format!(
                "{}\nvoid spex_zero_copy_probe() {{ exit({round}); }}\n",
                built.gen.source
            );
            ws.update_module("gen.c", &edited).unwrap();
            ws.reanalyze();
        }
        assert_eq!(
            ws.function_clones(),
            0,
            "function bodies copied at {threads} threads"
        );
        assert_eq!(ws.module_clones(), 0, "module cloned at {threads} threads");
    }
}
