//! Property-based tests over core invariants.
//!
//! The build environment has no network access, so instead of `proptest`
//! these use a small deterministic case generator: each property is
//! exercised over a few hundred pseudo-random inputs from a fixed seed,
//! which keeps failures reproducible without an external shrinker.

use spex::conf::{ConfFile, Dialect};
use spex::core::CmpOp;
use spex::inject::harness::intended_value;
use spex::systems::rng::SplitMix64;
use spex::vm::{Value, Vm, World};

/// Cases per property.
const CASES: usize = 200;

/// The shared splitmix64 generator plus the string-shaping helpers the
/// properties need.
struct Gen(SplitMix64);

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen(SplitMix64::seed_from_u64(seed))
    }

    /// Uniform in `[lo, hi)`.
    fn int(&mut self, lo: i64, hi: i64) -> i64 {
        self.0.gen_range(lo, hi)
    }

    fn usize(&mut self, lo: usize, hi: usize) -> usize {
        self.int(lo as i64, hi as i64) as usize
    }

    fn pick(&mut self, chars: &[char]) -> char {
        chars[self.usize(0, chars.len())]
    }

    /// A string of `len` characters drawn from `alphabet`.
    fn string(&mut self, alphabet: &[char], len: usize) -> String {
        (0..len).map(|_| self.pick(alphabet)).collect()
    }
}

fn lower() -> Vec<char> {
    ('a'..='z').collect()
}

fn lower_digit_underscore() -> Vec<char> {
    let mut v: Vec<char> = ('a'..='z').collect();
    v.extend('0'..='9');
    v.push('_');
    v
}

fn value_chars() -> Vec<char> {
    let mut v: Vec<char> = ('a'..='z').collect();
    v.extend('A'..='Z');
    v.extend('0'..='9');
    v.extend(['/', '.', '_', '-']);
    v
}

/// A config-parameter name: `[a-z][a-z0-9_]{0,12}`.
fn gen_name(g: &mut Gen) -> String {
    let mut s = String::new();
    s.push(g.pick(&lower()));
    let tail = g.usize(0, 13);
    s.push_str(&g.string(&lower_digit_underscore(), tail));
    s
}

/// A config value: `[a-zA-Z0-9/._-]{1,12}`.
fn gen_value(g: &mut Gen) -> String {
    let len = g.usize(1, 13);
    g.string(&value_chars(), len)
}

// --- Configuration AR -------------------------------------------------------

/// Parsing is idempotent through a serialize round-trip, for every
/// dialect.
#[test]
fn conf_roundtrip_is_stable() {
    let mut g = Gen::new(0x01);
    for _ in 0..CASES {
        let n = g.usize(0, 8);
        // Suffix names with their index so `set` never collapses entries.
        let mut pairs: Vec<(String, String)> = Vec::with_capacity(n);
        for i in 0..n {
            let name = format!("{}_{i}", gen_name(&mut g));
            let value = gen_value(&mut g);
            pairs.push((name, value));
        }
        for dialect in [
            Dialect::KeyValue,
            Dialect::Directive,
            Dialect::SpaceSeparated,
        ] {
            let mut conf = ConfFile {
                entries: vec![],
                dialect,
            };
            for (n, v) in &pairs {
                conf.set(n, v);
            }
            let text = conf.serialize();
            let reparsed = ConfFile::parse(&text, dialect);
            assert_eq!(reparsed.serialize(), text);
            for (n, v) in &pairs {
                assert_eq!(reparsed.get(n), Some(v.as_str()));
            }
        }
    }
}

/// `set` then `get` observes the written value; `remove` erases it.
#[test]
fn conf_set_get_remove() {
    let mut g = Gen::new(0x02);
    for _ in 0..CASES {
        let name = gen_name(&mut g);
        let v1 = gen_value(&mut g);
        let v2 = gen_value(&mut g);
        let mut conf = ConfFile::parse("", Dialect::KeyValue);
        conf.set(&name, &v1);
        conf.set(&name, &v2);
        assert_eq!(conf.get(&name), Some(v2.as_str()));
        // Double-set keeps a single entry.
        assert_eq!(conf.settings().count(), 1);
        conf.remove(&name);
        assert_eq!(conf.get(&name), None);
    }
}

// --- Comparison-operator algebra --------------------------------------------

/// Negation and flipping are involutions consistent with evaluation.
#[test]
fn cmp_op_algebra() {
    let mut g = Gen::new(0x03);
    for _ in 0..CASES {
        let a = g.int(-1000, 1000);
        let b = g.int(-1000, 1000);
        for op in [
            CmpOp::Lt,
            CmpOp::Gt,
            CmpOp::Le,
            CmpOp::Ge,
            CmpOp::Eq,
            CmpOp::Ne,
        ] {
            assert_eq!(op.negated().negated(), op);
            assert_eq!(op.flipped().flipped(), op);
            assert_eq!(op.eval(a, b), !op.negated().eval(a, b));
            assert_eq!(op.eval(a, b), op.flipped().eval(b, a));
        }
    }
}

// --- VM semantics -----------------------------------------------------------

/// The interpreter's `atoi` matches C semantics: leading digits with
/// optional sign, 32-bit wrap, garbage yields zero.
#[test]
fn vm_atoi_matches_c_model() {
    let program = spex::lang::parse_program("int conv(char* s) { return atoi(s); }").unwrap();
    let module = spex::ir::lower_program(&program).unwrap();
    let mut g = Gen::new(0x04);
    let letters: Vec<char> = ('a'..='z').chain('A'..='Z').collect();
    let digits: Vec<char> = ('0'..='9').collect();
    for _ in 0..CASES {
        // Shape: `[ ]{0,2}-?[0-9]{0,12}[a-zA-Z]{0,3}`.
        let mut s = String::new();
        s.push_str(&" ".repeat(g.usize(0, 3)));
        if g.usize(0, 2) == 1 {
            s.push('-');
        }
        let nd = g.usize(0, 13);
        s.push_str(&g.string(&digits, nd));
        let nl = g.usize(0, 4);
        s.push_str(&g.string(&letters, nl));

        let mut vm = Vm::new(&module, World::default());
        let got = vm.call("conv", &[Value::str(&s)]).unwrap();

        // Reference model.
        let t = s.trim_start();
        let (neg, rest) = match t.strip_prefix('-') {
            Some(r) => (true, r),
            None => (false, t),
        };
        let ds: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        let mut acc: i64 = 0;
        for d in ds.bytes() {
            acc = acc.saturating_mul(10).saturating_add((d - b'0') as i64);
        }
        let expect = (if neg { -acc } else { acc }) as i32 as i64;
        assert_eq!(got, Value::Int(expect), "input {s:?}");
    }
}

/// Arithmetic expressions evaluate identically in the VM and a
/// reference evaluator (wrapping i64 semantics).
#[test]
fn vm_arithmetic_matches_reference() {
    let mut g = Gen::new(0x05);
    for _ in 0..64 {
        let a = g.int(-10_000, 10_000);
        let b = g.int(-10_000, 10_000);
        let c = g.int(1, 100);
        let src = format!("long f() {{ return ({a} + {b}) * {c} - {b} / {c}; }}");
        let program = spex::lang::parse_program(&src).unwrap();
        let module = spex::ir::lower_program(&program).unwrap();
        let mut vm = Vm::new(&module, World::default());
        let got = vm.call("f", &[]).unwrap();
        let expect = (a.wrapping_add(b))
            .wrapping_mul(c)
            .wrapping_sub(b.wrapping_div(c));
        assert_eq!(got, Value::Int(expect));
    }
}

/// Control flow: the VM's loop summation equals the closed form.
#[test]
fn vm_loops_match_closed_form() {
    let program = spex::lang::parse_program(
        "long sum(int n) {
            long total = 0;
            for (int i = 1; i <= n; i++) { total += i; }
            return total;
        }",
    )
    .unwrap();
    let module = spex::ir::lower_program(&program).unwrap();
    let mut g = Gen::new(0x06);
    for _ in 0..CASES {
        let n = g.int(0, 200);
        let mut vm = Vm::new(&module, World::default());
        let got = vm.call("sum", &[Value::Int(n)]).unwrap();
        assert_eq!(got, Value::Int(n * (n + 1) / 2));
    }
}

// --- SSA invariants over generated programs ---------------------------------

/// Every function of a generated-style program stays verifier-clean
/// after SSA promotion, and each SSA value is defined exactly once.
#[test]
fn ssa_single_assignment_holds() {
    let mut g = Gen::new(0x07);
    for _ in 0..64 {
        let x = g.int(-50, 50);
        let y = g.int(-50, 50);
        let threshold = g.int(-20, 20);
        let src = format!(
            "int knob = {x};
             int f(int v) {{
                int acc = {y};
                if (v > {threshold}) {{ acc = v * 2; }}
                else {{ acc = v - knob; }}
                while (acc > 100) {{ acc -= 10; }}
                return acc;
             }}"
        );
        let program = spex::lang::parse_program(&src).unwrap();
        let module = spex::ir::lower_program(&program).unwrap();
        for f in &module.functions {
            let ssa = spex::ir::promote_to_ssa(f);
            let errors = spex::ir::verify::verify_function(&ssa);
            assert!(errors.is_empty(), "verifier: {errors:?}");
            let mut defs = std::collections::HashSet::new();
            for (_, _, instr, _) in ssa.iter_instrs() {
                if let Some(d) = instr.def() {
                    assert!(defs.insert(d), "double definition");
                }
            }
        }
    }
}

// --- Injection-harness value model ------------------------------------------

/// The user-intention parser honours plain integers exactly.
#[test]
fn intended_value_integers() {
    let mut g = Gen::new(0x08);
    for _ in 0..CASES {
        let v = g.int(-1_000_000, 1_000_000);
        assert_eq!(intended_value(&v.to_string()), Some(Value::Int(v)));
    }
}

/// Unit suffixes multiply as documented.
#[test]
fn intended_value_units() {
    let mut g = Gen::new(0x09);
    for _ in 0..CASES {
        let base = g.int(1, 1024);
        assert_eq!(
            intended_value(&format!("{base}K")),
            Some(Value::Int(base << 10))
        );
        assert_eq!(
            intended_value(&format!("{base}MB")),
            Some(Value::Int(base << 20))
        );
        assert_eq!(
            intended_value(&format!("{base}G")),
            Some(Value::Int(base << 30))
        );
    }
}
