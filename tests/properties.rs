//! Property-based tests over core invariants.

use proptest::prelude::*;
use spex::conf::{ConfFile, Dialect};
use spex::core::CmpOp;
use spex::inject::harness::intended_value;
use spex::vm::{Value, Vm, World};

// --- Configuration AR ---------------------------------------------------------

proptest! {
    /// Parsing is idempotent through a serialize round-trip, for every
    /// dialect.
    #[test]
    fn conf_roundtrip_is_stable(
        names in proptest::collection::vec("[a-z][a-z0-9_]{0,12}", 0..8),
        values in proptest::collection::vec("[a-zA-Z0-9/._-]{1,12}", 0..8),
    ) {
        // Suffix names with their index so `set` never collapses entries.
        let pairs: Vec<(String, &String)> = names
            .iter()
            .zip(values.iter())
            .enumerate()
            .map(|(i, (n, v))| (format!("{n}_{i}"), v))
            .collect();
        for dialect in [Dialect::KeyValue, Dialect::Directive, Dialect::SpaceSeparated] {
            let mut conf = ConfFile { entries: vec![], dialect };
            for (n, v) in &pairs {
                conf.set(n, v);
            }
            let text = conf.serialize();
            let reparsed = ConfFile::parse(&text, dialect);
            prop_assert_eq!(reparsed.serialize(), text);
            for (n, v) in &pairs {
                prop_assert_eq!(reparsed.get(n), Some(v.as_str()));
            }
        }
    }

    /// `set` then `get` observes the written value; `remove` erases it.
    #[test]
    fn conf_set_get_remove(
        name in "[a-z][a-z0-9_]{0,10}",
        v1 in "[a-z0-9]{1,8}",
        v2 in "[a-z0-9]{1,8}",
    ) {
        let mut conf = ConfFile::parse("", Dialect::KeyValue);
        conf.set(&name, &v1);
        conf.set(&name, &v2);
        prop_assert_eq!(conf.get(&name), Some(v2.as_str()));
        // Double-set keeps a single entry.
        prop_assert_eq!(conf.settings().count(), 1);
        conf.remove(&name);
        prop_assert_eq!(conf.get(&name), None);
    }
}

// --- Comparison-operator algebra -----------------------------------------------

proptest! {
    /// Negation and flipping are involutions consistent with evaluation.
    #[test]
    fn cmp_op_algebra(a in -1000i64..1000, b in -1000i64..1000) {
        for op in [CmpOp::Lt, CmpOp::Gt, CmpOp::Le, CmpOp::Ge, CmpOp::Eq, CmpOp::Ne] {
            prop_assert_eq!(op.negated().negated(), op);
            prop_assert_eq!(op.flipped().flipped(), op);
            prop_assert_eq!(op.eval(a, b), !op.negated().eval(a, b));
            prop_assert_eq!(op.eval(a, b), op.flipped().eval(b, a));
        }
    }
}

// --- VM semantics ----------------------------------------------------------------

proptest! {
    /// The interpreter's `atoi` matches C semantics: leading digits with
    /// optional sign, 32-bit wrap, garbage yields zero.
    #[test]
    fn vm_atoi_matches_c_model(s in "[ ]{0,2}-?[0-9]{0,12}[a-zA-Z]{0,3}") {
        let program = spex::lang::parse_program(
            "int conv(char* s) { return atoi(s); }",
        ).unwrap();
        let module = spex::ir::lower_program(&program).unwrap();
        let mut vm = Vm::new(&module, World::default());
        let got = vm.call("conv", &[Value::str(&s)]).unwrap();

        // Reference model.
        let t = s.trim_start();
        let (neg, rest) = match t.strip_prefix('-') {
            Some(r) => (true, r),
            None => (false, t),
        };
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        let mut acc: i64 = 0;
        for d in digits.bytes() {
            acc = acc.saturating_mul(10).saturating_add((d - b'0') as i64);
        }
        let expect = (if neg { -acc } else { acc }) as i32 as i64;
        prop_assert_eq!(got, Value::Int(expect));
    }

    /// Arithmetic expressions evaluate identically in the VM and a
    /// reference evaluator (wrapping i64 semantics).
    #[test]
    fn vm_arithmetic_matches_reference(
        a in -10_000i64..10_000,
        b in -10_000i64..10_000,
        c in 1i64..100,
    ) {
        let src = format!(
            "long f() {{ return ({a} + {b}) * {c} - {b} / {c}; }}"
        );
        let program = spex::lang::parse_program(&src).unwrap();
        let module = spex::ir::lower_program(&program).unwrap();
        let mut vm = Vm::new(&module, World::default());
        let got = vm.call("f", &[]).unwrap();
        let expect = (a.wrapping_add(b)).wrapping_mul(c).wrapping_sub(b.wrapping_div(c));
        prop_assert_eq!(got, Value::Int(expect));
    }

    /// Control flow: the VM's loop summation equals the closed form.
    #[test]
    fn vm_loops_match_closed_form(n in 0i64..200) {
        let program = spex::lang::parse_program(
            "long sum(int n) {
                long total = 0;
                for (int i = 1; i <= n; i++) { total += i; }
                return total;
            }",
        ).unwrap();
        let module = spex::ir::lower_program(&program).unwrap();
        let mut vm = Vm::new(&module, World::default());
        let got = vm.call("sum", &[Value::Int(n)]).unwrap();
        prop_assert_eq!(got, Value::Int(n * (n + 1) / 2));
    }
}

// --- SSA invariants over generated programs ---------------------------------------

proptest! {
    /// Every function of a generated-style program stays verifier-clean
    /// after SSA promotion, and each SSA value is defined exactly once.
    #[test]
    fn ssa_single_assignment_holds(
        x in -50i64..50,
        y in -50i64..50,
        threshold in -20i64..20,
    ) {
        let src = format!(
            "int knob = {x};
             int f(int v) {{
                int acc = {y};
                if (v > {threshold}) {{ acc = v * 2; }}
                else {{ acc = v - knob; }}
                while (acc > 100) {{ acc -= 10; }}
                return acc;
             }}"
        );
        let program = spex::lang::parse_program(&src).unwrap();
        let module = spex::ir::lower_program(&program).unwrap();
        for f in &module.functions {
            let ssa = spex::ir::promote_to_ssa(f);
            let errors = spex::ir::verify::verify_function(&ssa);
            prop_assert!(errors.is_empty(), "verifier: {errors:?}");
            let mut defs = std::collections::HashSet::new();
            for (_, _, instr, _) in ssa.iter_instrs() {
                if let Some(d) = instr.def() {
                    prop_assert!(defs.insert(d), "double definition");
                }
            }
        }
    }
}

// --- Injection-harness value model ---------------------------------------------------

proptest! {
    /// The user-intention parser honours plain integers exactly.
    #[test]
    fn intended_value_integers(v in -1_000_000i64..1_000_000) {
        prop_assert_eq!(intended_value(&v.to_string()), Some(Value::Int(v)));
    }

    /// Unit suffixes multiply as documented.
    #[test]
    fn intended_value_units(base in 1i64..1024) {
        prop_assert_eq!(
            intended_value(&format!("{base}K")),
            Some(Value::Int(base << 10))
        );
        prop_assert_eq!(
            intended_value(&format!("{base}MB")),
            Some(Value::Int(base << 20))
        );
        prop_assert_eq!(
            intended_value(&format!("{base}G")),
            Some(Value::Int(base << 30))
        );
    }
}
