//! # SPEX — "Do Not Blame Users for Misconfigurations" (SOSP 2013)
//!
//! A from-scratch Rust reproduction of Xu et al.'s SPEX system: automatic
//! inference of configuration constraints from source code, constraint-
//! guided misconfiguration injection (SPEX-INJ), and detection of
//! error-prone configuration design.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`lang`] — the mini-C front-end (standing in for Clang);
//! * [`ir`] — the CFG/SSA intermediate representation (standing in for
//!   LLVM IR);
//! * [`dataflow`] — the inter-procedural, field-sensitive data-flow engine;
//! * [`core`] — SPEX itself: mapping toolkits and the five constraint
//!   inference passes;
//! * [`conf`] — the configuration-file abstract representation;
//! * [`vm`] — the IR interpreter with a modelled OS;
//! * [`inject`] — SPEX-INJ: generation, injection, reaction classification;
//! * [`design`] — the error-prone-design detectors;
//! * [`systems`] — the seven generated subject systems of the evaluation;
//! * [`react`] — static reaction analysis: predicts each parameter's
//!   reaction path for invalid values (`SPEX-V001..V004`) from the IR,
//!   no injection run required;
//! * [`check`] — the constraint-driven configuration validation engine
//!   (infer → persist → check);
//! * [`obs`] — std-only telemetry: structured spans, a metrics registry,
//!   and snapshot renderers, threaded through the whole stack (enable it
//!   per workspace with [`Workspace::enable_telemetry`] and read it back
//!   with [`Workspace::telemetry`]).
//!
//! # The primary entry point: [`Workspace`]
//!
//! A [`Workspace`] is a long-lived session owning sources, annotations and
//! a persisted constraint database. It fingerprints functions, re-infers
//! only what a change dirtied, merges results into a versioned database,
//! and streams whole configuration trees through the batch checker:
//!
//! ```
//! use spex::conf::Dialect;
//! use spex::Workspace;
//!
//! let mut ws = Workspace::new("demo", Dialect::KeyValue);
//! ws.add_module(
//!     "config.c",
//!     r#"
//!     int index_intlen = 4;
//!     struct opt { char* name; int* var; };
//!     struct opt options[] = { { "index_intlen", &index_intlen } };
//!     void config_generic() {
//!         if (index_intlen < 4) { index_intlen = 4; }
//!         else if (index_intlen > 255) { index_intlen = 255; }
//!     }
//!     "#,
//!     "{ @STRUCT = options\n  @PAR = [opt, 1]\n  @VAR = [opt, 2] }",
//! )
//! .unwrap();
//! ws.reanalyze();
//! assert!(!ws.check_text("index_intlen = 1024\n").is_empty());
//!
//! // Later edits re-infer only what they touched:
//! // ws.update_module("config.c", edited)?; ws.reanalyze();
//! ```
//!
//! Checking runs on a **borrowed** [`CheckSession`] the workspace caches
//! across calls (no database copies; invalidated automatically when
//! `reanalyze`/`merge_db` change constraints). Every finding carries a
//! stable [`DiagCode`] (`SPEX-Rxxx`), the violated constraint's
//! provenance, and — where computable — a machine-applicable fix; whole
//! runs leave the system as a [`Report`] renderable as human text, JSON
//! Lines or a SARIF-style document (see [`Renderer`]).
//!
//! The one-shot pipeline (`Spex::analyze` on a hand-lowered module) is
//! still available through [`core`], but new code should hold a
//! `Workspace` so re-analysis stays proportional to the change.

pub use spex_check as check;
pub use spex_conf as conf;
pub use spex_core as core;
pub use spex_dataflow as dataflow;
pub use spex_design as design;
pub use spex_inj as inject;
pub use spex_ir as ir;
pub use spex_lang as lang;
pub use spex_obs as obs;
pub use spex_react as react;
pub use spex_systems as systems;
pub use spex_vm as vm;

pub use spex_check::{
    CheckSession, ColorMode, DiagCode, HumanRenderer, JsonLinesRenderer, ReanalyzeReport, Renderer,
    Report, SarifRenderer, Workspace, WorkspaceError,
};
pub use spex_obs::{Recorder, TelemetrySnapshot};
