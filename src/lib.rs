//! # SPEX — "Do Not Blame Users for Misconfigurations" (SOSP 2013)
//!
//! A from-scratch Rust reproduction of Xu et al.'s SPEX system: automatic
//! inference of configuration constraints from source code, constraint-
//! guided misconfiguration injection (SPEX-INJ), and detection of
//! error-prone configuration design.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`lang`] — the mini-C front-end (standing in for Clang);
//! * [`ir`] — the CFG/SSA intermediate representation (standing in for
//!   LLVM IR);
//! * [`dataflow`] — the inter-procedural, field-sensitive data-flow engine;
//! * [`core`] — SPEX itself: mapping toolkits and the five constraint
//!   inference passes;
//! * [`conf`] — the configuration-file abstract representation;
//! * [`vm`] — the IR interpreter with a modelled OS;
//! * [`inject`] — SPEX-INJ: generation, injection, reaction classification;
//! * [`design`] — the error-prone-design detectors;
//! * [`systems`] — the seven generated subject systems of the evaluation;
//! * [`check`] — the constraint-driven configuration validation engine
//!   (infer → persist → check).
//!
//! # Examples
//!
//! The complete pipeline on one of the paper's worked examples:
//!
//! ```
//! use spex::core::{Annotation, Spex};
//!
//! let source = r#"
//!     int index_intlen = 4;
//!     struct opt { char* name; int* var; };
//!     struct opt options[] = { { "index_intlen", &index_intlen } };
//!     void config_generic() {
//!         if (index_intlen < 4) { index_intlen = 4; }
//!         else if (index_intlen > 255) { index_intlen = 255; }
//!     }
//! "#;
//! let program = spex::lang::parse_program(source).unwrap();
//! let module = spex::ir::lower_program(&program).unwrap();
//! let anns = Annotation::parse(
//!     "{ @STRUCT = options\n  @PAR = [opt, 1]\n  @VAR = [opt, 2] }",
//! )
//! .unwrap();
//! let analysis = Spex::analyze(module, &anns);
//! let constraints = &analysis.param("index_intlen").unwrap().constraints;
//! assert!(constraints.iter().any(|c| c.to_string().contains("[4, 255]")));
//! ```

pub use spex_check as check;
pub use spex_conf as conf;
pub use spex_core as core;
pub use spex_dataflow as dataflow;
pub use spex_design as design;
pub use spex_inj as inject;
pub use spex_ir as ir;
pub use spex_lang as lang;
pub use spex_systems as systems;
pub use spex_vm as vm;
